// Package core implements the Polaris transactional storage engine (paper
// Sections 3, 4 and 6): optimistic MVCC with Snapshot Isolation over
// log-structured tables, executed as distributed task DAGs on the DCP.
//
// The moving parts, mapped to the paper:
//
//   - Engine ties together the catalog DB (SQL FE's SQL Server), the object
//     store (OneLake/ADLS), the compute fabric and the DCP.
//   - Txn is a user transaction. Reads capture a snapshot of the Manifests
//     table under catalog SI (4.1.1); writes produce private data files and a
//     private transaction manifest assembled from per-task blocks (3.2.2);
//     commit runs the validation phase in the catalog (4.1.2).
//   - Conflict detection is at table or data-file granularity (4.4.1).
//   - Lineage features — Query As Of, Clone As Of, Restore — operate purely
//     on logical metadata (Section 6).
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"polaris/internal/catalog"
	"polaris/internal/compute"
	"polaris/internal/dcp"
	"polaris/internal/exec"
	"polaris/internal/manifest"
	"polaris/internal/objectstore"
)

// ConflictGranularity selects how write-write conflicts are detected.
type ConflictGranularity int

// Conflict granularities (paper 4.4.1).
const (
	TableGranularity ConflictGranularity = iota
	FileGranularity
)

// DeleteMode selects how updates/deletes are physically represented
// (paper 2.1).
type DeleteMode int

// Delete modes.
const (
	// MergeOnRead adds deletion vectors next to immutable data files; readers
	// filter at scan time. Polaris's default.
	MergeOnRead DeleteMode = iota
	// CopyOnWrite rewrites affected data files without the deleted rows.
	CopyOnWrite
)

// Options configures the engine.
type Options struct {
	// Distributions is the number of buckets of the distribution function
	// d(r); each bucket is a cell column in the paper's data model.
	Distributions int
	// RowsPerFile is the target data-file size for bulk writes.
	RowsPerFile int
	// RowsPerGroup is the row-group size within a file.
	RowsPerGroup int
	// Granularity selects table- vs file-level conflict detection.
	Granularity ConflictGranularity
	// Deletes selects merge-on-read (default) vs copy-on-write.
	Deletes DeleteMode
	// Isolation is the default isolation level for new transactions.
	Isolation catalog.IsolationLevel
	// WLMSeparate places read and write tasks on disjoint node pools.
	WLMSeparate bool
	// Parallelism is the target degree of intra-query parallelism for the
	// morsel-driven executor; 0 or 1 disables parallel execution. The
	// effective degree is additionally capped by the fabric's free slots at
	// query start (compute.Fabric.LeaseSlots).
	Parallelism int
	// JoinMemoryBudget caps the bytes a hash-join build side may hold in
	// memory; a build that exceeds it grace-spills both sides to the object
	// store and joins partition-wise (byte-identical results either way).
	// 0 or negative means unlimited — the build is always in-memory.
	JoinMemoryBudget int64
	// MaxTaskAttempts bounds DCP task retries.
	MaxTaskAttempts int
	// CheckpointEvery is the manifest-count threshold the STO uses.
	CheckpointEvery int
	// CompactSmallRows and CompactDeletedFrac are storage-health thresholds.
	CompactSmallRows   int64
	CompactDeletedFrac float64
	// RetentionSeqs bounds time travel and GC of removed files.
	RetentionSeqs int64
	// TaskFailureInjector, when non-nil, is consulted before every DCP task
	// attempt (failure testing); a non-nil error fails that attempt.
	TaskFailureInjector func(taskID, attempt int, node *compute.Node) error
	// DistributedQueries routes parallel SELECTs through the DCP as task
	// DAGs (scan/build/probe/merge stages on the read pool, object-store
	// exchange between stages) instead of the in-process morsel pool. Off by
	// default: output is byte-identical either way (the morsel decomposition
	// is shared), so this only changes where the work runs.
	DistributedQueries bool
	// QueryFailureInjector, when non-nil, is consulted after every
	// query-DAG task attempt (failure testing for DistributedQueries); a
	// non-nil error discards the attempt's output and retries it on another
	// node. Kept separate from TaskFailureInjector so query-task schedules
	// don't collide with the storage fetch/write DAGs' task IDs.
	QueryFailureInjector func(taskID, attempt int, node *compute.Node) error
}

// DefaultOptions returns production-shaped defaults scaled for tests.
func DefaultOptions() Options {
	return Options{
		Distributions:      8,
		RowsPerFile:        1 << 16,
		RowsPerGroup:       1 << 12,
		Granularity:        TableGranularity,
		Isolation:          catalog.Snapshot,
		WLMSeparate:        true,
		Parallelism:        exec.DefaultDOP(),
		MaxTaskAttempts:    3,
		CheckpointEvery:    10,
		CompactSmallRows:   1024,
		CompactDeletedFrac: 0.3,
		RetentionSeqs:      1 << 30,
	}
}

// CommitEvent notifies observers (the STO) of a committed change to a table.
type CommitEvent struct {
	TableID  int64
	TxnID    int64
	Seq      int64
	Manifest string
	Actions  []manifest.Action
	When     time.Time
}

// WorkStats aggregates modeled work across all queries on an engine. The
// counters are deterministic functions of the data each query's snapshot
// covers (physical rows, files and bytes fetched by scan tasks), which makes
// them the stable thing to assert on in concurrency benchmarks where
// wall-clock and even simulated durations vary run to run.
type WorkStats struct {
	RowsScanned atomic.Int64
	FilesRead   atomic.Int64
	BytesRead   atomic.Int64
	// MergeFreeAggs counts aggregate plans that took the distribution-aware
	// merge-free path (GROUP BY covers the distribution column, so per-cell
	// partials are disjoint by d(r) and the merge phase is skipped). Plan
	// choice is deterministic, so tests assert on this counter.
	MergeFreeAggs atomic.Int64
	// TopNPushdowns counts ORDER BY ... LIMIT plans that pushed a bounded
	// top-N into the morsel workers (each worker ships at most LIMIT+OFFSET
	// rows; the FE k-way merge cuts off early). Like MergeFreeAggs, the plan
	// choice is deterministic, so tests assert on this counter.
	TopNPushdowns atomic.Int64
	// JoinSpills counts hash-join builds that exceeded JoinMemoryBudget and
	// took the grace-join spill path (both sides partitioned to the object
	// store, joined partition-wise). For a fixed snapshot and budget the
	// build-side size is deterministic, so tests assert on this counter.
	JoinSpills atomic.Int64
	// JoinSpillBytes totals the bytes written to spill namespaces by grace
	// joins (build and probe partitions, recursive repartitioning included)
	// — the budget-accounting counterpart of BytesRead. Counted per durable
	// write: a put that fails mid-spill contributes nothing, so the counter
	// always equals the bytes that actually reached the store.
	JoinSpillBytes atomic.Int64
	// JoinSpillPartitions counts the leaf (build, probe) partition pairs
	// grace joins actually joined — the independent tasks the partition-wise
	// fan-out runs on the worker pool, recursion included; partitions with
	// no probe rows are skipped and not counted. Deterministic for a fixed
	// snapshot, budget and fanout, so tests assert on this counter.
	JoinSpillPartitions atomic.Int64
	// BuildSideSwaps counts joins whose build side differs from syntactic
	// order because the cost-based planner estimated the other side smaller
	// (docs/PLANNER.md). Plan choice depends only on the snapshot's
	// statistics, so tests assert on this counter.
	BuildSideSwaps atomic.Int64
	// PushedFilters counts WHERE conjuncts compiled into the scan itself
	// (evaluated before unreferenced columns are decoded) rather than a
	// downstream Filter operator. Deterministic per statement shape.
	PushedFilters atomic.Int64
	// RuntimeFilterRows counts probe-side rows skipped by join runtime bloom
	// filters before the hash-table walk (in-memory probe and spilled
	// partitioning alike). Row-based, so DOP-invariant: tests assert on it
	// across the DOP × budget sweep.
	RuntimeFilterRows atomic.Int64
	// DagTasks counts DCP tasks executed on behalf of distributed queries
	// (Options.DistributedQueries). The DAG shape is a pure function of the
	// plan and the configured parallelism — M scan tasks plus, per join, one
	// gather and M probe tasks — so the count is deterministic per statement
	// and invariant under failure injection (retries re-run a task, they do
	// not add one).
	DagTasks atomic.Int64
	// DagRetries counts query-DAG task attempts beyond the first (node lost
	// after Exec, output discarded, task re-placed). Zero without injected
	// or real node failures; the failure-sweep tests assert it goes ≥ 1 when
	// a kill schedule is active.
	DagRetries atomic.Int64
	// DagStages counts pipeline stages executed by distributed queries: 1
	// for a scan-only plan, 1 + number of joins otherwise. Deterministic per
	// statement shape, like DagTasks.
	DagStages atomic.Int64
	// Admission tracks front-door admission-control traffic when a serving
	// process (cmd/polaris-server) multiplexes concurrent sessions over the
	// fabric's slot pool: statements queued/admitted/rejected plus total
	// queue-wait time. Zero for embedded (library/CLI) use, where statements
	// lease slots directly without admission.
	Admission compute.AdmissionCounters
}

// Snapshot returns a plain-values copy of the counters.
func (w *WorkStats) Snapshot() (rows, files, bytes int64) {
	return w.RowsScanned.Load(), w.FilesRead.Load(), w.BytesRead.Load()
}

// Engine is the Polaris transactional storage engine.
type Engine struct {
	Catalog *catalog.DB
	Store   *objectstore.Store
	Fabric  *compute.Fabric
	Cache   *manifest.SnapshotCache
	// Work counts modeled scan work engine-wide (thread-safe).
	Work WorkStats
	opts Options

	mu          sync.Mutex
	nextTxnID   int64
	nextSpillID int64
	activeTxns  map[int64]*Txn
	observers   []func(CommitEvent)

	// simTotal accumulates simulated time across all operations (benchmarks).
	simTotal time.Duration
}

// NewEngine assembles an engine over the given substrates.
func NewEngine(cat *catalog.DB, store *objectstore.Store, fabric *compute.Fabric, opts Options) *Engine {
	if opts.Distributions == 0 {
		opts = DefaultOptions()
	}
	return &Engine{
		Catalog:    cat,
		Store:      store,
		Fabric:     fabric,
		Cache:      manifest.NewSnapshotCache(),
		opts:       opts,
		nextTxnID:  1000, // paper-style transaction ids
		activeTxns: make(map[int64]*Txn),
	}
}

// NewDefaultEngine builds an engine with fresh substrates — the common entry
// point for examples and tests.
func NewDefaultEngine(opts Options) *Engine {
	fabric := compute.NewFabric(compute.Config{Elastic: true, InitNodes: 4, SlotsPer: 4})
	return NewEngine(catalog.NewDB(), objectstore.New(), fabric, opts)
}

// Options returns the engine's configuration.
func (e *Engine) Options() Options { return e.opts }

// Subscribe registers a commit observer (the STO). Observers are invoked
// synchronously after a successful commit, once per modified table.
func (e *Engine) Subscribe(fn func(CommitEvent)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.observers = append(e.observers, fn)
}

func (e *Engine) notify(ev CommitEvent) {
	e.mu.Lock()
	obs := append([]func(CommitEvent){}, e.observers...)
	e.mu.Unlock()
	for _, fn := range obs {
		fn(ev)
	}
}

func (e *Engine) charge(d time.Duration) {
	e.mu.Lock()
	e.simTotal += d
	e.mu.Unlock()
}

// SimTotal returns the accumulated simulated time across all operations.
func (e *Engine) SimTotal() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.simTotal
}

// MinActiveTxnID returns the smallest transaction ID among active
// transactions, or the next ID when none are active. Garbage collection uses
// this fence to distinguish aborted leftovers from in-flight work (5.3).
func (e *Engine) MinActiveTxnID() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	min := e.nextTxnID + 1
	for id := range e.activeTxns {
		if id < min {
			min = id
		}
	}
	return min
}

// pools builds the WLM node pools for a job. With separation enabled and at
// least two nodes, reads and writes land on disjoint halves (4.3).
func (e *Engine) pools(nodes []*compute.Node) dcp.Pools {
	if !e.opts.WLMSeparate || len(nodes) < 2 {
		return dcp.Pools{dcp.ReadPool: nodes, dcp.WritePool: nodes}
	}
	half := len(nodes) / 2
	return dcp.Pools{dcp.ReadPool: nodes[:half], dcp.WritePool: nodes[half:]}
}

// PoolGauges is a point-in-time view of the WLM pool split: how many live
// nodes (and task slots) the read and write pools would receive if a job
// were placed over the full topology right now.
type PoolGauges struct {
	ReadNodes, ReadSlots   int
	WriteNodes, WriteSlots int
}

// PoolGauges reports the current DCP pool topology for observability
// (served under GET /metrics). With WLM separation disabled both pools see
// every node, so the gauges intentionally double-count in that mode — they
// describe placement domains, not exclusive capacity.
func (e *Engine) PoolGauges() PoolGauges {
	pools := e.pools(e.Fabric.Nodes())
	var g PoolGauges
	for _, n := range pools[dcp.ReadPool] {
		if n.Alive() {
			g.ReadNodes++
			g.ReadSlots += n.Slots
		}
	}
	for _, n := range pools[dcp.WritePool] {
		if n.Alive() {
			g.WriteNodes++
			g.WriteSlots += n.Slots
		}
	}
	return g
}

// Begin starts a user transaction at the engine's default isolation level.
func (e *Engine) Begin() *Txn { return e.BeginLevel(e.opts.Isolation) }

// BeginLevel starts a user transaction at an explicit isolation level
// (Snapshot, ReadCommittedSnapshot, or Serializable — paper 4.4.2).
func (e *Engine) BeginLevel(level catalog.IsolationLevel) *Txn {
	e.mu.Lock()
	e.nextTxnID++
	id := e.nextTxnID
	e.mu.Unlock()
	t := &Txn{
		eng:     e,
		id:      id,
		catTx:   e.Catalog.Begin(level),
		level:   level,
		tables:  make(map[int64]*txnTable),
		started: time.Now(),
	}
	e.mu.Lock()
	e.activeTxns[id] = t
	e.mu.Unlock()
	return t
}

func (e *Engine) finishTxn(t *Txn) {
	e.mu.Lock()
	delete(e.activeTxns, t.id)
	e.mu.Unlock()
}

// AutoCommit runs fn inside a transaction, committing on success and rolling
// back on error.
func (e *Engine) AutoCommit(fn func(t *Txn) error) error {
	t := e.Begin()
	if err := fn(t); err != nil {
		t.Rollback()
		return err
	}
	return t.Commit()
}

// RunWithRetries runs fn in a fresh transaction, retrying on write-write
// conflicts up to maxRetries times (the paper's "retried otherwise").
func (e *Engine) RunWithRetries(maxRetries int, fn func(t *Txn) error) error {
	var err error
	for attempt := 0; attempt <= maxRetries; attempt++ {
		err = e.AutoCommit(fn)
		if err == nil || !catalog.IsWriteConflict(err) {
			return err
		}
	}
	return fmt.Errorf("core: giving up after %d conflict retries: %w", maxRetries, err)
}

// TablePaths groups the storage layout for one table.
type TablePaths struct{ ID int64 }

// DataPrefix is the OneLake folder for the table's data files.
func (p TablePaths) DataPrefix() string { return fmt.Sprintf("tables/%d/data/", p.ID) }

// DVPrefix is the folder for deletion-vector files.
func (p TablePaths) DVPrefix() string { return fmt.Sprintf("tables/%d/dv/", p.ID) }

// ManifestPrefix is the folder for transaction manifest files.
func (p TablePaths) ManifestPrefix() string { return fmt.Sprintf("tables/%d/manifests/", p.ID) }

// CheckpointPrefix is the folder for checkpoint files.
func (p TablePaths) CheckpointPrefix() string { return fmt.Sprintf("tables/%d/checkpoints/", p.ID) }

// DeltaLogPrefix is the user-visible published Delta log location (5.4).
func (p TablePaths) DeltaLogPrefix() string { return fmt.Sprintf("published/%d/_delta_log/", p.ID) }

// DataFile names a data file written by txn for a distribution bucket.
func (p TablePaths) DataFile(txnID int64, part, n int) string {
	return fmt.Sprintf("%s%d-p%d-%d.pcf", p.DataPrefix(), txnID, part, n)
}

// DVFile names a deletion-vector file written by txn.
func (p TablePaths) DVFile(txnID int64, n int) string {
	return fmt.Sprintf("%s%d-%d.dv", p.DVPrefix(), txnID, n)
}

// ManifestFile names the transaction manifest blob for txn.
func (p TablePaths) ManifestFile(txnID int64) string {
	return fmt.Sprintf("%s%d.json", p.ManifestPrefix(), txnID)
}

// CheckpointFile names a checkpoint file at a sequence.
func (p TablePaths) CheckpointFile(seq int64) string {
	return fmt.Sprintf("%s%d.json", p.CheckpointPrefix(), seq)
}
