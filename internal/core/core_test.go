package core

import (
	"errors"
	"fmt"
	"testing"

	"polaris/internal/catalog"
	"polaris/internal/colfile"
	"polaris/internal/compute"
	"polaris/internal/exec"
	"polaris/internal/manifest"
	"polaris/internal/objectstore"
)

func testEngine(t *testing.T) *Engine {
	t.Helper()
	opts := DefaultOptions()
	opts.Distributions = 4
	opts.RowsPerFile = 1000
	opts.RowsPerGroup = 100
	fabric := compute.NewFabric(compute.Config{Elastic: true, InitNodes: 4, SlotsPer: 2})
	return NewEngine(catalog.NewDB(), objectstore.New(), fabric, opts)
}

func t1Schema() colfile.Schema {
	return colfile.Schema{
		{Name: "c1", Type: colfile.String},
		{Name: "c2", Type: colfile.Int64},
	}
}

func rowsBatch(t *testing.T, schema colfile.Schema, rows ...[]any) *colfile.Batch {
	t.Helper()
	b := colfile.NewBatch(schema)
	for _, r := range rows {
		if err := b.AppendRow(r...); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

func mustCreate(t *testing.T, e *Engine, name string) {
	t.Helper()
	err := e.AutoCommit(func(tx *Txn) error {
		_, err := tx.CreateTable(name, t1Schema(), "c1", "c2")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func sumC2(t *testing.T, tx *Txn, table string, asOf int64) int64 {
	t.Helper()
	op, _, err := tx.Scan(table, ScanOptions{Columns: []string{"c2"}, AsOfSeq: asOf})
	if err != nil {
		t.Fatal(err)
	}
	agg := &exec.HashAgg{In: op, Aggs: []exec.AggSpec{{Kind: exec.AggSum, Arg: exec.ColRef{Idx: 0}}}}
	out, err := exec.Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 1 || out.Cols[0].IsNull(0) {
		return 0
	}
	return out.Cols[0].Ints[0]
}

func TestInsertAndReadBack(t *testing.T) {
	e := testEngine(t)
	mustCreate(t, e, "t1")
	err := e.AutoCommit(func(tx *Txn) error {
		n, err := tx.Insert("t1", rowsBatch(t, t1Schema(), []any{"A", int64(1)}, []any{"B", int64(2)}, []any{"C", int64(3)}))
		if err != nil {
			return err
		}
		if n != 3 {
			t.Fatalf("inserted = %d", n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	defer tx.Rollback()
	rs, err := tx.ReadAll("t1")
	if err != nil {
		t.Fatal(err)
	}
	if rs.NumRows() != 3 {
		t.Fatalf("rows = %d", rs.NumRows())
	}
	if got := sumC2(t, tx, "t1", -1); got != 6 {
		t.Fatalf("sum = %d", got)
	}
}

func TestUncommittedInvisibleCommittedVisible(t *testing.T) {
	e := testEngine(t)
	mustCreate(t, e, "t1")
	w := e.Begin()
	if _, err := w.Insert("t1", rowsBatch(t, t1Schema(), []any{"A", int64(1)})); err != nil {
		t.Fatal(err)
	}
	// concurrent reader sees nothing
	r := e.Begin()
	if got := sumC2(t, r, "t1", -1); got != 0 {
		t.Fatalf("uncommitted visible: %d", got)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	// old snapshot still sees nothing (SI)
	if got := sumC2(t, r, "t1", -1); got != 0 {
		t.Fatalf("snapshot unstable: %d", got)
	}
	r.Rollback()
	// new snapshot sees the row
	r2 := e.Begin()
	defer r2.Rollback()
	if got := sumC2(t, r2, "t1", -1); got != 1 {
		t.Fatalf("committed invisible: %d", got)
	}
}

func TestPaperSection42Example(t *testing.T) {
	// Transcription of Figure 6's timeline.
	e := testEngine(t)
	mustCreate(t, e, "T1")

	// t1: X1 loads three rows and commits.
	x1 := e.Begin()
	if _, err := x1.Insert("T1", rowsBatch(t, t1Schema(),
		[]any{"A", int64(1)}, []any{"B", int64(2)}, []any{"C", int64(3)})); err != nil {
		t.Fatal(err)
	}
	if err := x1.Commit(); err != nil {
		t.Fatal(err)
	}

	// t2: X2 inserts (D,4),(E,5) and deletes (A,1); X3 reads T1.
	x2 := e.Begin()
	x3 := e.Begin()
	if _, err := x2.Insert("T1", rowsBatch(t, t1Schema(), []any{"D", int64(4)}, []any{"E", int64(5)})); err != nil {
		t.Fatal(err)
	}
	n, err := x2.Delete("T1", exec.Bin{Kind: exec.OpEq, L: exec.ColRef{Idx: 0}, R: exec.Const{Val: "A"}})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("X2 deleted %d rows", n)
	}
	// X3's SUM(C2) must be 6 (X2 invisible).
	if got := sumC2(t, x3, "T1", -1); got != 6 {
		t.Fatalf("X3 sum = %d, want 6", got)
	}
	// X2 sees its own changes: 2+3+4+5 = 14.
	if got := sumC2(t, x2, "T1", -1); got != 14 {
		t.Fatalf("X2 own view sum = %d, want 14", got)
	}

	// t3: X2 commits; X3 deletes (B,2).
	if err := x2.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := x3.Delete("T1", exec.Bin{Kind: exec.OpEq, L: exec.ColRef{Idx: 0}, R: exec.Const{Val: "B"}}); err != nil {
		t.Fatal(err)
	}
	// X3 still sees its snapshot minus B: 1+3 = 4... wait, snapshot had A,B,C.
	if got := sumC2(t, x3, "T1", -1); got != 4 {
		t.Fatalf("X3 post-delete sum = %d, want 4 (1+3)", got)
	}

	// t4: X3's commit detects the SI conflict in WriteSets and rolls back.
	if err := x3.Commit(); !catalog.IsWriteConflict(err) {
		t.Fatalf("X3 commit: %v, want write conflict", err)
	}

	// X4 starting now sees all actions of X1 and X2: SUM = 14.
	x4 := e.Begin()
	defer x4.Rollback()
	if got := sumC2(t, x4, "T1", -1); got != 14 {
		t.Fatalf("X4 sum = %d, want 14", got)
	}
}

func TestDeleteWithMergedDV(t *testing.T) {
	e := testEngine(t)
	mustCreate(t, e, "t1")
	err := e.AutoCommit(func(tx *Txn) error {
		_, err := tx.Insert("t1", rowsBatch(t, t1Schema(),
			[]any{"A", int64(1)}, []any{"B", int64(2)}, []any{"C", int64(3)}, []any{"D", int64(4)}))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// two committed deletes against the same files: the second must merge
	for _, victim := range []string{"A", "C"} {
		err := e.AutoCommit(func(tx *Txn) error {
			n, err := tx.Delete("t1", exec.Bin{Kind: exec.OpEq, L: exec.ColRef{Idx: 0}, R: exec.Const{Val: victim}})
			if err != nil {
				return err
			}
			if n != 1 {
				t.Fatalf("deleted %d", n)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	tx := e.Begin()
	defer tx.Rollback()
	rs, err := tx.ReadAll("t1")
	if err != nil {
		t.Fatal(err)
	}
	if rs.NumRows() != 2 {
		t.Fatalf("rows = %d", rs.NumRows())
	}
	if got := sumC2(t, tx, "t1", -1); got != 6 { // B(2)+D(4)
		t.Fatalf("sum = %d", got)
	}
}

func TestMultiStatementVisibility(t *testing.T) {
	// Statements within a txn see prior statements' changes (3.2.3).
	e := testEngine(t)
	mustCreate(t, e, "t1")
	tx := e.Begin()
	if _, err := tx.Insert("t1", rowsBatch(t, t1Schema(), []any{"A", int64(1)})); err != nil {
		t.Fatal(err)
	}
	if got := sumC2(t, tx, "t1", -1); got != 1 {
		t.Fatalf("stmt2 cannot see stmt1: %d", got)
	}
	// statement 3 deletes the row inserted by statement 1
	n, err := tx.Delete("t1", exec.Bin{Kind: exec.OpEq, L: exec.ColRef{Idx: 0}, R: exec.Const{Val: "A"}})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("deleted %d", n)
	}
	if got := sumC2(t, tx, "t1", -1); got != 0 {
		t.Fatalf("stmt4 sees deleted row: %d", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := e.Begin()
	defer tx2.Rollback()
	if got := sumC2(t, tx2, "t1", -1); got != 0 {
		t.Fatalf("committed view: %d", got)
	}
}

func TestUpdateIsDeletePlusInsert(t *testing.T) {
	e := testEngine(t)
	mustCreate(t, e, "t1")
	_ = e.AutoCommit(func(tx *Txn) error {
		_, err := tx.Insert("t1", rowsBatch(t, t1Schema(), []any{"A", int64(1)}, []any{"B", int64(2)}))
		return err
	})
	err := e.AutoCommit(func(tx *Txn) error {
		n, err := tx.Update("t1",
			exec.Bin{Kind: exec.OpEq, L: exec.ColRef{Idx: 0}, R: exec.Const{Val: "A"}},
			map[string]exec.Expr{"c2": exec.Bin{Kind: exec.OpMul, L: exec.ColRef{Idx: 1}, R: exec.Const{Val: int64(100)}}})
		if err != nil {
			return err
		}
		if n != 1 {
			t.Fatalf("updated %d", n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	defer tx.Rollback()
	if got := sumC2(t, tx, "t1", -1); got != 102 {
		t.Fatalf("sum = %d", got)
	}
}

func TestInsertOnlyTransactionsNeverConflict(t *testing.T) {
	e := testEngine(t)
	mustCreate(t, e, "t1")
	a := e.Begin()
	b := e.Begin()
	if _, err := a.Insert("t1", rowsBatch(t, t1Schema(), []any{"A", int64(1)})); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Insert("t1", rowsBatch(t, t1Schema(), []any{"B", int64(2)})); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatalf("concurrent insert conflicted: %v", err)
	}
	tx := e.Begin()
	defer tx.Rollback()
	if got := sumC2(t, tx, "t1", -1); got != 3 {
		t.Fatalf("sum = %d", got)
	}
}

func TestConcurrentUpdatersConflictAndRetrySucceeds(t *testing.T) {
	e := testEngine(t)
	mustCreate(t, e, "t1")
	_ = e.AutoCommit(func(tx *Txn) error {
		_, err := tx.Insert("t1", rowsBatch(t, t1Schema(), []any{"A", int64(1)}, []any{"B", int64(2)}))
		return err
	})
	a := e.Begin()
	b := e.Begin()
	delA := exec.Bin{Kind: exec.OpEq, L: exec.ColRef{Idx: 0}, R: exec.Const{Val: "A"}}
	delB := exec.Bin{Kind: exec.OpEq, L: exec.ColRef{Idx: 0}, R: exec.Const{Val: "B"}}
	if _, err := a.Delete("t1", delA); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Delete("t1", delB); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); !catalog.IsWriteConflict(err) {
		t.Fatalf("table-granularity conflict missing: %v", err)
	}
	// paper: the failed transaction is retried and then succeeds
	err := e.RunWithRetries(3, func(tx *Txn) error {
		_, err := tx.Delete("t1", delB)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	defer tx.Rollback()
	if got := sumC2(t, tx, "t1", -1); got != 0 {
		t.Fatalf("sum = %d", got)
	}
}

func TestFileGranularityAllowsDisjointFileUpdates(t *testing.T) {
	e := testEngine(t)
	e.opts.Granularity = FileGranularity
	mustCreate(t, e, "t1")
	// two rows that land in different distribution buckets -> different files
	_ = e.AutoCommit(func(tx *Txn) error {
		_, err := tx.Insert("t1", rowsBatch(t, t1Schema(), []any{"A", int64(1)}, []any{"B", int64(2)}))
		return err
	})
	tx0 := e.Begin()
	st, _, err := tx0.Snapshot("t1", -1)
	if err != nil {
		t.Fatal(err)
	}
	tx0.Rollback()
	if len(st.Files) < 2 {
		t.Skipf("rows hashed to the same file; file-granularity case needs 2 files, got %d", len(st.Files))
	}

	a := e.Begin()
	b := e.Begin()
	if _, err := a.Delete("t1", exec.Bin{Kind: exec.OpEq, L: exec.ColRef{Idx: 0}, R: exec.Const{Val: "A"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Delete("t1", exec.Bin{Kind: exec.OpEq, L: exec.ColRef{Idx: 0}, R: exec.Const{Val: "B"}}); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatalf("file-granularity still conflicted: %v", err)
	}
}

func TestFileGranularitySameFileConflicts(t *testing.T) {
	e := testEngine(t)
	e.opts.Granularity = FileGranularity
	mustCreate(t, e, "t1")
	_ = e.AutoCommit(func(tx *Txn) error {
		_, err := tx.Insert("t1", rowsBatch(t, t1Schema(), []any{"A", int64(1)}, []any{"A2", int64(2)}))
		return err
	})
	// both transactions delete rows by c2 — whatever files they live in, the
	// predicate c2 >= 1 touches every file, so both txns touch all files.
	pred := exec.Bin{Kind: exec.OpGe, L: exec.ColRef{Idx: 1}, R: exec.Const{Val: int64(1)}}
	a := e.Begin()
	b := e.Begin()
	if _, err := a.Delete("t1", pred); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Delete("t1", pred); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); !catalog.IsWriteConflict(err) {
		t.Fatalf("same-file conflict missing: %v", err)
	}
}

func TestRollbackDiscardsChanges(t *testing.T) {
	e := testEngine(t)
	mustCreate(t, e, "t1")
	tx := e.Begin()
	if _, err := tx.Insert("t1", rowsBatch(t, t1Schema(), []any{"A", int64(1)})); err != nil {
		t.Fatal(err)
	}
	tx.Rollback()
	r := e.Begin()
	defer r.Rollback()
	if got := sumC2(t, r, "t1", -1); got != 0 {
		t.Fatalf("rolled back data visible: %d", got)
	}
	// data files (and the statement-flushed manifest blob) remain on storage
	// as dangling files until GC (5.3) ...
	if e.Store.Count() == 0 {
		t.Fatal("expected dangling files awaiting GC")
	}
	// ... but no Manifests row exists, so the change is invisible forever.
	rows, err := catalog.ScanManifests(r.catTx, 1, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("aborted txn left Manifests rows: %+v", rows)
	}
}

func TestQueryAsOf(t *testing.T) {
	e := testEngine(t)
	mustCreate(t, e, "t1")
	var seqs []int64
	for i := 1; i <= 3; i++ {
		tx := e.Begin()
		if _, err := tx.Insert("t1", rowsBatch(t, t1Schema(), []any{fmt.Sprintf("r%d", i), int64(i)})); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, tx.catTx.CommitSeq())
	}
	tx := e.Begin()
	defer tx.Rollback()
	if got := sumC2(t, tx, "t1", seqs[0]); got != 1 {
		t.Fatalf("as-of-1 sum = %d", got)
	}
	if got := sumC2(t, tx, "t1", seqs[1]); got != 3 {
		t.Fatalf("as-of-2 sum = %d", got)
	}
	if got := sumC2(t, tx, "t1", -1); got != 6 {
		t.Fatalf("latest sum = %d", got)
	}
}

func TestCloneAsOf(t *testing.T) {
	e := testEngine(t)
	mustCreate(t, e, "src")
	var seq1 int64
	tx := e.Begin()
	_, _ = tx.Insert("src", rowsBatch(t, t1Schema(), []any{"A", int64(1)}))
	_ = tx.Commit()
	seq1 = tx.catTx.CommitSeq()
	_ = e.AutoCommit(func(tx *Txn) error {
		_, err := tx.Insert("src", rowsBatch(t, t1Schema(), []any{"B", int64(2)}))
		return err
	})

	// clone as of seq1: only row A
	err := e.AutoCommit(func(tx *Txn) error {
		_, err := tx.CloneTable("src", "clone1", seq1)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	r := e.Begin()
	defer r.Rollback()
	if got := sumC2(t, r, "clone1", -1); got != 1 {
		t.Fatalf("clone sum = %d", got)
	}
	// clones evolve independently
	err = e.AutoCommit(func(tx *Txn) error {
		_, err := tx.Insert("clone1", rowsBatch(t, t1Schema(), []any{"X", int64(100)}))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	r2 := e.Begin()
	defer r2.Rollback()
	if got := sumC2(t, r2, "clone1", -1); got != 101 {
		t.Fatalf("clone after insert = %d", got)
	}
	if got := sumC2(t, r2, "src", -1); got != 3 {
		t.Fatalf("source mutated by clone write: %d", got)
	}
}

func TestRestoreAsOf(t *testing.T) {
	e := testEngine(t)
	mustCreate(t, e, "t1")
	tx := e.Begin()
	_, _ = tx.Insert("t1", rowsBatch(t, t1Schema(), []any{"A", int64(1)}))
	_ = tx.Commit()
	seq1 := tx.catTx.CommitSeq()
	_ = e.AutoCommit(func(tx *Txn) error {
		_, err := tx.Insert("t1", rowsBatch(t, t1Schema(), []any{"B", int64(2)}))
		return err
	})
	err := e.AutoCommit(func(tx *Txn) error { return tx.RestoreTableAsOf("t1", seq1) })
	if err != nil {
		t.Fatal(err)
	}
	r := e.Begin()
	defer r.Rollback()
	if got := sumC2(t, r, "t1", -1); got != 1 {
		t.Fatalf("restored sum = %d", got)
	}
}

func TestMultiTableTransaction(t *testing.T) {
	e := testEngine(t)
	mustCreate(t, e, "a")
	mustCreate(t, e, "b")
	tx := e.Begin()
	if _, err := tx.Insert("a", rowsBatch(t, t1Schema(), []any{"x", int64(1)})); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert("b", rowsBatch(t, t1Schema(), []any{"y", int64(2)})); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	r := e.Begin()
	defer r.Rollback()
	if sumC2(t, r, "a", -1) != 1 || sumC2(t, r, "b", -1) != 2 {
		t.Fatal("multi-table commit not atomic")
	}
	// both tables' manifest rows carry the same sequence
	rowsA, _ := catalog.ScanManifests(r.catTx, 1, -1)
	rowsB, _ := catalog.ScanManifests(r.catTx, 2, -1)
	if len(rowsA) != 1 || len(rowsB) != 1 || rowsA[0].Seq != rowsB[0].Seq {
		t.Fatalf("multi-table seqs: %v %v", rowsA, rowsB)
	}
}

func TestMultiTableRollbackIsAtomic(t *testing.T) {
	e := testEngine(t)
	mustCreate(t, e, "a")
	mustCreate(t, e, "b")
	// txA updates a; txB updates a AND b: txB must fail wholesale, leaving b
	// untouched.
	_ = e.AutoCommit(func(tx *Txn) error {
		_, err := tx.Insert("a", rowsBatch(t, t1Schema(), []any{"x", int64(1)}))
		return err
	})
	_ = e.AutoCommit(func(tx *Txn) error {
		_, err := tx.Insert("b", rowsBatch(t, t1Schema(), []any{"y", int64(5)}))
		return err
	})
	pred := exec.Bin{Kind: exec.OpGe, L: exec.ColRef{Idx: 1}, R: exec.Const{Val: int64(0)}}
	txA := e.Begin()
	txB := e.Begin()
	if _, err := txA.Delete("a", pred); err != nil {
		t.Fatal(err)
	}
	if _, err := txB.Delete("a", pred); err != nil {
		t.Fatal(err)
	}
	if _, err := txB.Delete("b", pred); err != nil {
		t.Fatal(err)
	}
	if err := txA.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := txB.Commit(); !catalog.IsWriteConflict(err) {
		t.Fatalf("txB: %v", err)
	}
	r := e.Begin()
	defer r.Rollback()
	if got := sumC2(t, r, "b", -1); got != 5 {
		t.Fatalf("partial commit leaked into b: sum = %d", got)
	}
}

func TestDDLAndDMLInOneTransaction(t *testing.T) {
	e := testEngine(t)
	tx := e.Begin()
	if _, err := tx.CreateTable("t1", t1Schema(), "c1", "c2"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert("t1", rowsBatch(t, t1Schema(), []any{"A", int64(7)})); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	r := e.Begin()
	defer r.Rollback()
	if got := sumC2(t, r, "t1", -1); got != 7 {
		t.Fatalf("sum = %d", got)
	}
	// rolled-back DDL leaves no table behind
	tx2 := e.Begin()
	if _, err := tx2.CreateTable("ghost", t1Schema(), "c1", ""); err != nil {
		t.Fatal(err)
	}
	tx2.Rollback()
	r2 := e.Begin()
	defer r2.Rollback()
	if _, err := r2.Table("ghost"); !errors.Is(err, catalog.ErrTableNotFound) {
		t.Fatalf("ghost table: %v", err)
	}
}

func TestStats(t *testing.T) {
	e := testEngine(t)
	mustCreate(t, e, "t1")
	_ = e.AutoCommit(func(tx *Txn) error {
		_, err := tx.Insert("t1", rowsBatch(t, t1Schema(),
			[]any{"A", int64(1)}, []any{"B", int64(2)}, []any{"C", int64(3)}))
		return err
	})
	_ = e.AutoCommit(func(tx *Txn) error {
		_, err := tx.Delete("t1", exec.Bin{Kind: exec.OpEq, L: exec.ColRef{Idx: 0}, R: exec.Const{Val: "A"}})
		return err
	})
	tx := e.Begin()
	defer tx.Rollback()
	st, err := tx.Stats("t1")
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != 2 || st.Deleted != 1 || st.Manifests != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Health.Healthy() {
		// tiny files are below CompactSmallRows, so health should flag them
		t.Fatalf("health = %+v, tiny files should be flagged", st.Health)
	}
}

func TestScanColumnsAndPruning(t *testing.T) {
	e := testEngine(t)
	mustCreate(t, e, "t1")
	b := colfile.NewBatch(t1Schema())
	for i := 0; i < 500; i++ {
		_ = b.AppendRow(fmt.Sprintf("k%03d", i), int64(i))
	}
	_ = e.AutoCommit(func(tx *Txn) error {
		_, err := tx.Insert("t1", b)
		return err
	})
	tx := e.Begin()
	defer tx.Rollback()
	op, tel, err := tx.Scan("t1", ScanOptions{Columns: []string{"c2"}, Prune: &exec.PruneHint{Col: "c2", Lo: 0, Hi: 99}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := exec.Collect(&exec.Filter{In: op, Pred: exec.Bin{Kind: exec.OpLt, L: exec.ColRef{Idx: 0}, R: exec.Const{Val: int64(100)}}})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 100 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	if tel.GroupsPruned.Load() == 0 {
		t.Fatal("zone-map pruning did not fire")
	}
}

func TestCommitEventNotification(t *testing.T) {
	e := testEngine(t)
	mustCreate(t, e, "t1")
	var events []CommitEvent
	e.Subscribe(func(ev CommitEvent) { events = append(events, ev) })
	_ = e.AutoCommit(func(tx *Txn) error {
		_, err := tx.Insert("t1", rowsBatch(t, t1Schema(), []any{"A", int64(1)}))
		return err
	})
	if len(events) != 1 || events[0].TableID != 1 || len(events[0].Actions) == 0 {
		t.Fatalf("events = %+v", events)
	}
	if !e.Store.Exists(events[0].Manifest) {
		t.Fatal("manifest blob missing")
	}
}

func TestSimTimeAccrues(t *testing.T) {
	e := testEngine(t)
	mustCreate(t, e, "t1")
	tx := e.Begin()
	if _, err := tx.Insert("t1", rowsBatch(t, t1Schema(), []any{"A", int64(1)})); err != nil {
		t.Fatal(err)
	}
	if tx.SimTime() <= 0 {
		t.Fatal("no simulated time charged for insert")
	}
	before := tx.SimTime()
	if _, err := tx.ReadAll("t1"); err != nil {
		t.Fatal(err)
	}
	if tx.SimTime() <= before {
		t.Fatal("no simulated time charged for read")
	}
	_ = tx.Commit()
	if e.SimTotal() < tx.SimTime() {
		t.Fatal("engine sim total lost txn time")
	}
}

func TestTxnAfterDoneFails(t *testing.T) {
	e := testEngine(t)
	mustCreate(t, e, "t1")
	tx := e.Begin()
	_ = tx.Commit()
	if _, err := tx.Insert("t1", rowsBatch(t, t1Schema(), []any{"A", int64(1)})); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("insert after commit: %v", err)
	}
	if _, err := tx.ReadAll("t1"); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("read after commit: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("double commit: %v", err)
	}
}

func TestEmptyTableScan(t *testing.T) {
	e := testEngine(t)
	mustCreate(t, e, "t1")
	tx := e.Begin()
	defer tx.Rollback()
	rs, err := tx.ReadAll("t1")
	if err != nil {
		t.Fatal(err)
	}
	if rs.NumRows() != 0 {
		t.Fatalf("rows = %d", rs.NumRows())
	}
	if cols := rs.Columns(); len(cols) != 2 || cols[0] != "c1" {
		t.Fatalf("columns = %v", cols)
	}
}

func TestRCSIReadsSeeNewCommits(t *testing.T) {
	// Paper 4.4.2: in RCSI mode a transaction reads the changes of any
	// concurrent transaction that commits, instead of a fixed snapshot.
	e := testEngine(t)
	mustCreate(t, e, "t1")
	_ = e.AutoCommit(func(tx *Txn) error {
		_, err := tx.Insert("t1", rowsBatch(t, t1Schema(), []any{"A", int64(1)}))
		return err
	})
	rcsi := e.BeginLevel(catalog.ReadCommittedSnapshot)
	defer rcsi.Rollback()
	si := e.Begin()
	defer si.Rollback()
	if got := sumC2(t, rcsi, "t1", -1); got != 1 {
		t.Fatalf("rcsi first read = %d", got)
	}
	_ = e.AutoCommit(func(tx *Txn) error {
		_, err := tx.Insert("t1", rowsBatch(t, t1Schema(), []any{"B", int64(10)}))
		return err
	})
	if got := sumC2(t, rcsi, "t1", -1); got != 11 {
		t.Fatalf("rcsi second read = %d, want 11 (sees new commit)", got)
	}
	if got := sumC2(t, si, "t1", -1); got != 1 {
		t.Fatalf("si read = %d, want 1 (snapshot stable)", got)
	}
}

func TestCopyOnWriteDelete(t *testing.T) {
	e := testEngine(t)
	e.opts.Deletes = CopyOnWrite
	mustCreate(t, e, "t1")
	_ = e.AutoCommit(func(tx *Txn) error {
		_, err := tx.Insert("t1", rowsBatch(t, t1Schema(),
			[]any{"A", int64(1)}, []any{"B", int64(2)}, []any{"C", int64(3)}))
		return err
	})
	err := e.AutoCommit(func(tx *Txn) error {
		n, err := tx.Delete("t1", exec.Bin{Kind: exec.OpEq, L: exec.ColRef{Idx: 0}, R: exec.Const{Val: "B"}})
		if err != nil {
			return err
		}
		if n != 1 {
			t.Fatalf("deleted %d", n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	defer tx.Rollback()
	if got := sumC2(t, tx, "t1", -1); got != 4 {
		t.Fatalf("sum = %d", got)
	}
	// CoW leaves no deletion vectors behind
	st, err := tx.Stats("t1")
	if err != nil {
		t.Fatal(err)
	}
	if st.Deleted != 0 {
		t.Fatalf("CoW left DVs: %+v", st)
	}
	// repeated delete on the rewritten file still works
	err = e.AutoCommit(func(tx *Txn) error {
		_, err := tx.Delete("t1", exec.Bin{Kind: exec.OpEq, L: exec.ColRef{Idx: 0}, R: exec.Const{Val: "A"}})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	tx2 := e.Begin()
	defer tx2.Rollback()
	if got := sumC2(t, tx2, "t1", -1); got != 3 {
		t.Fatalf("sum = %d", got)
	}
}

func TestReconcileActions(t *testing.T) {
	a1 := manifest.Action{Op: manifest.OpAdd, Kind: manifest.KindData, Path: "f1", Rows: 10}
	a2 := manifest.Action{Op: manifest.OpAdd, Kind: manifest.KindDV, Path: "dv1", Target: "f1", DeletedRows: 2}
	a3 := manifest.Action{Op: manifest.OpRemove, Kind: manifest.KindDV, Path: "dv1", Target: "f1"}
	a4 := manifest.Action{Op: manifest.OpAdd, Kind: manifest.KindDV, Path: "dv2", Target: "f1", DeletedRows: 5}
	out := reconcileActions([]manifest.Action{a1, a2, a3, a4})
	if len(out) != 2 {
		t.Fatalf("reconciled = %+v", out)
	}
	if out[0].Path != "f1" || out[1].Path != "dv2" {
		t.Fatalf("reconciled = %+v", out)
	}
	// add + remove of same data file cancels entirely
	out = reconcileActions([]manifest.Action{a1, {Op: manifest.OpRemove, Kind: manifest.KindData, Path: "f1"}})
	if len(out) != 0 {
		t.Fatalf("cancelled = %+v", out)
	}
}
