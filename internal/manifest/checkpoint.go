package manifest

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Checkpoint is a compacted representation of a table's full state as of a
// commit sequence (paper Section 5.2). Instead of replaying every manifest,
// a reader loads the newest checkpoint at or below its snapshot sequence and
// replays only the manifests after it.
type Checkpoint struct {
	TableID int64        `json:"table_id"`
	Seq     int64        `json:"seq"` // state includes all commits with sequence <= Seq
	Files   []*FileEntry `json:"files"`
	// Tombstones carries forward logically-removed files still within the
	// retention period so garbage collection can see them across checkpoints.
	Tombstones []Tombstone `json:"tombstones,omitempty"`
}

// BuildCheckpoint captures the state into a checkpoint at its LastSeq.
func BuildCheckpoint(tableID int64, s *TableState) *Checkpoint {
	cp := &Checkpoint{
		TableID:    tableID,
		Seq:        s.LastSeq,
		Files:      s.LiveFiles(),
		Tombstones: append([]Tombstone(nil), s.Tombstones...),
	}
	return cp
}

// State reconstitutes the checkpoint into a TableState ready for further
// replay.
func (cp *Checkpoint) State() *TableState {
	s := NewTableState()
	s.LastSeq = cp.Seq
	for _, f := range cp.Files {
		cpf := *f
		s.Files[f.Path] = &cpf
	}
	s.Tombstones = append(s.Tombstones, cp.Tombstones...)
	return s
}

// Marshal serializes the checkpoint.
func (cp *Checkpoint) Marshal() ([]byte, error) { return json.Marshal(cp) }

// UnmarshalCheckpoint parses a serialized checkpoint.
func UnmarshalCheckpoint(data []byte) (*Checkpoint, error) {
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("manifest: parse checkpoint: %w", err)
	}
	return &cp, nil
}

// CommittedManifest pairs a manifest's commit sequence with its actions, the
// unit the snapshot reconstructor replays. The sequence comes from the
// catalog's Manifests table, not from the file itself.
type CommittedManifest struct {
	Seq     int64
	Path    string
	Actions []Action
}

// Reconstruct builds a snapshot as of asOfSeq from an optional checkpoint and
// the committed manifests after it. Manifests at sequences beyond asOfSeq, or
// at/below the checkpoint's sequence, are skipped; a negative asOfSeq means
// "latest".
func Reconstruct(cp *Checkpoint, manifests []CommittedManifest, asOfSeq int64) (*TableState, error) {
	var s *TableState
	if cp != nil && (asOfSeq < 0 || cp.Seq <= asOfSeq) {
		s = cp.State()
	} else {
		s = NewTableState()
	}
	ordered := append([]CommittedManifest(nil), manifests...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Seq < ordered[j].Seq })
	for _, m := range ordered {
		if m.Seq <= s.LastSeq && s.LastSeq > 0 {
			continue
		}
		if asOfSeq >= 0 && m.Seq > asOfSeq {
			break
		}
		if err := s.Apply(m.Seq, m.Actions); err != nil {
			return nil, fmt.Errorf("manifest: replay %s: %w", m.Path, err)
		}
	}
	return s, nil
}
