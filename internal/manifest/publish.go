package manifest

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Delta-log publishing (paper Section 5.4): Polaris's internal manifest
// format aligns closely with Delta Lake's transaction log, so publishing a
// committed manifest for consumption by other engines (Spark etc.) is a
// per-commit transform into Delta-style JSON actions written to a
// user-visible location.

// DeltaAdd mirrors a Delta Lake "add" action.
type DeltaAdd struct {
	Path             string `json:"path"`
	Size             int64  `json:"size"`
	ModificationTime int64  `json:"modificationTime"`
	DataChange       bool   `json:"dataChange"`
	NumRecords       int64  `json:"numRecords"`
	DeletionVector   string `json:"deletionVector,omitempty"`
}

// DeltaRemove mirrors a Delta Lake "remove" action.
type DeltaRemove struct {
	Path              string `json:"path"`
	DeletionTimestamp int64  `json:"deletionTimestamp"`
	DataChange        bool   `json:"dataChange"`
}

// DeltaCommitInfo mirrors Delta's commitInfo action.
type DeltaCommitInfo struct {
	Timestamp int64  `json:"timestamp"`
	Operation string `json:"operation"`
	TxnID     int64  `json:"txnId"`
}

type deltaLine struct {
	Add        *DeltaAdd        `json:"add,omitempty"`
	Remove     *DeltaRemove     `json:"remove,omitempty"`
	CommitInfo *DeltaCommitInfo `json:"commitInfo,omitempty"`
}

// ToDeltaLog renders one committed manifest as a Delta-style log file body.
// DV adds are folded into re-adds of their target file, matching how Delta
// represents deletion-vector updates.
func ToDeltaLog(m CommittedManifest, txnID, commitMillis int64, state *TableState) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	_ = enc.Encode(deltaLine{CommitInfo: &DeltaCommitInfo{
		Timestamp: commitMillis, Operation: "WRITE", TxnID: txnID,
	}})
	for _, a := range m.Actions {
		switch {
		case a.Kind == KindData && a.Op == OpAdd:
			_ = enc.Encode(deltaLine{Add: &DeltaAdd{
				Path: a.Path, Size: a.Size, ModificationTime: commitMillis,
				DataChange: true, NumRecords: a.Rows,
			}})
		case a.Kind == KindData && a.Op == OpRemove:
			_ = enc.Encode(deltaLine{Remove: &DeltaRemove{
				Path: a.Path, DeletionTimestamp: commitMillis, DataChange: true,
			}})
		case a.Kind == KindDV && a.Op == OpAdd:
			// Delta models a DV change as a re-add of the data file carrying
			// the DV reference.
			var rows, size int64
			if state != nil {
				if f, ok := state.Files[a.Target]; ok {
					rows, size = f.Rows, f.Size
				}
			}
			_ = enc.Encode(deltaLine{Add: &DeltaAdd{
				Path: a.Target, Size: size, ModificationTime: commitMillis,
				DataChange: true, NumRecords: rows, DeletionVector: a.Path,
			}})
		case a.Kind == KindDV && a.Op == OpRemove:
			// The superseded DV disappears with the re-add above; no separate
			// Delta action is required.
		}
	}
	return buf.Bytes()
}

// DeltaLogName returns the zero-padded Delta log file name for a version.
func DeltaLogName(version int64) string {
	return fmt.Sprintf("_delta_log/%020d.json", version)
}

// ParseDeltaLog decodes a published Delta log body (used by tests and by the
// interop checks in examples).
func ParseDeltaLog(data []byte) (adds []DeltaAdd, removes []DeltaRemove, info *DeltaCommitInfo, err error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	for dec.More() {
		var line deltaLine
		if err := dec.Decode(&line); err != nil {
			return nil, nil, nil, fmt.Errorf("manifest: parse delta log: %w", err)
		}
		switch {
		case line.Add != nil:
			adds = append(adds, *line.Add)
		case line.Remove != nil:
			removes = append(removes, *line.Remove)
		case line.CommitInfo != nil:
			info = line.CommitInfo
		}
	}
	return adds, removes, info, nil
}
