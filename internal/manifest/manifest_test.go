package manifest

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func addData(path string, rows int64) Action {
	return Action{Op: OpAdd, Kind: KindData, Path: path, Rows: rows, Size: rows * 100}
}

func removeData(path string) Action {
	return Action{Op: OpRemove, Kind: KindData, Path: path}
}

func addDV(path, target string, deleted int64) Action {
	return Action{Op: OpAdd, Kind: KindDV, Path: path, Target: target, DeletedRows: deleted}
}

func removeDV(path, target string) Action {
	return Action{Op: OpRemove, Kind: KindDV, Path: path, Target: target}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	actions := []Action{
		addData("1.parquet", 100),
		addDV("1dv.bin", "1.parquet", 3),
		removeData("0.parquet"),
	}
	// "remove of unknown file" is a replay-time error, not a decode error.
	got, err := Decode(Encode(actions))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, actions) {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestDecodeRejectsInvalid(t *testing.T) {
	bad := []Action{{Op: "frob", Kind: KindData, Path: "x"}}
	if _, err := Decode(Encode(bad)); err == nil {
		t.Fatal("invalid op accepted")
	}
	if _, err := Decode([]byte(`{"op":"add","kind":"dv","path":"d"}` + "\n")); err == nil {
		t.Fatal("dv without target accepted")
	}
	if _, err := Decode([]byte("{garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestDecodeEmptyIsEmpty(t *testing.T) {
	got, err := Decode(nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestBlockConcatenationIsValidManifest(t *testing.T) {
	// Blocks from different BE tasks concatenate into one valid manifest.
	b1 := Encode([]Action{addData("a.parquet", 10)})
	b2 := Encode([]Action{addData("b.parquet", 20)})
	got, err := Decode(append(b1, b2...))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d actions", len(got))
	}
}

func TestApplyAddAndRemove(t *testing.T) {
	s := NewTableState()
	must(t, s.Apply(1, []Action{addData("a", 10), addData("b", 20)}))
	if s.TotalRows() != 30 || len(s.Files) != 2 {
		t.Fatalf("rows=%d files=%d", s.TotalRows(), len(s.Files))
	}
	must(t, s.Apply(2, []Action{removeData("a")}))
	if s.TotalRows() != 20 {
		t.Fatalf("rows=%d", s.TotalRows())
	}
	if len(s.Tombstones) != 1 || s.Tombstones[0].Path != "a" || s.Tombstones[0].RemovedSeq != 2 {
		t.Fatalf("tombstones = %+v", s.Tombstones)
	}
	if s.LastSeq != 2 {
		t.Fatalf("LastSeq = %d", s.LastSeq)
	}
}

func TestApplyDVLifecycle(t *testing.T) {
	s := NewTableState()
	must(t, s.Apply(1, []Action{addData("a", 100)}))
	must(t, s.Apply(2, []Action{addDV("dv1", "a", 5)}))
	if s.Files["a"].DeletedRows != 5 || s.Files["a"].DV != "dv1" {
		t.Fatalf("file = %+v", s.Files["a"])
	}
	if s.TotalRows() != 95 {
		t.Fatalf("rows = %d", s.TotalRows())
	}
	// merged DV replaces the old one (paper 4.2: remove old, add merged)
	must(t, s.Apply(3, []Action{removeDV("dv1", "a"), addDV("dv2", "a", 12)}))
	if s.Files["a"].DV != "dv2" || s.Files["a"].DeletedRows != 12 {
		t.Fatalf("file = %+v", s.Files["a"])
	}
}

func TestApplyErrors(t *testing.T) {
	s := NewTableState()
	if err := s.Apply(1, []Action{removeData("ghost")}); err == nil {
		t.Fatal("remove of unknown file accepted")
	}
	if err := s.Apply(1, []Action{addDV("dv", "ghost", 1)}); err == nil {
		t.Fatal("dv on unknown file accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := NewTableState()
	must(t, s.Apply(1, []Action{addData("a", 10)}))
	c := s.Clone()
	must(t, c.Apply(2, []Action{removeData("a")}))
	if len(s.Files) != 1 || s.LastSeq != 1 {
		t.Fatal("clone mutated parent")
	}
	// deep: mutating a file entry in clone must not affect parent
	c2 := s.Clone()
	c2.Files["a"].DeletedRows = 99
	if s.Files["a"].DeletedRows != 0 {
		t.Fatal("clone aliases file entries")
	}
}

func TestOverlayUncommittedChanges(t *testing.T) {
	committed := NewTableState()
	must(t, committed.Apply(1, []Action{addData("a", 10)}))
	view, err := committed.Overlay([]Action{addData("txn-file", 5)})
	if err != nil {
		t.Fatal(err)
	}
	if view.TotalRows() != 15 {
		t.Fatalf("overlay rows = %d", view.TotalRows())
	}
	if committed.TotalRows() != 10 {
		t.Fatal("overlay mutated committed state")
	}
}

func TestReconstructOrdersBySeq(t *testing.T) {
	ms := []CommittedManifest{
		{Seq: 2, Path: "m2", Actions: []Action{removeData("a")}},
		{Seq: 1, Path: "m1", Actions: []Action{addData("a", 10), addData("b", 5)}},
	}
	s, err := Reconstruct(nil, ms, -1)
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalRows() != 5 || s.LastSeq != 2 {
		t.Fatalf("rows=%d seq=%d", s.TotalRows(), s.LastSeq)
	}
}

func TestReconstructAsOf(t *testing.T) {
	ms := []CommittedManifest{
		{Seq: 1, Actions: []Action{addData("a", 10)}},
		{Seq: 2, Actions: []Action{addData("b", 20)}},
		{Seq: 3, Actions: []Action{removeData("a")}},
	}
	s, err := Reconstruct(nil, ms, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalRows() != 30 {
		t.Fatalf("as-of-2 rows = %d", s.TotalRows())
	}
	s, _ = Reconstruct(nil, ms, -1)
	if s.TotalRows() != 20 {
		t.Fatalf("latest rows = %d", s.TotalRows())
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	s := NewTableState()
	must(t, s.Apply(1, []Action{addData("a", 10), addData("b", 20)}))
	must(t, s.Apply(2, []Action{addDV("dv", "a", 2), removeData("b")}))
	cp := BuildCheckpoint(42, s)
	data, err := cp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.TableID != 42 || back.Seq != 2 {
		t.Fatalf("cp = %+v", back)
	}
	rs := back.State()
	if rs.TotalRows() != 8 || rs.Files["a"].DV != "dv" {
		t.Fatalf("restored rows = %d", rs.TotalRows())
	}
	if len(rs.Tombstones) != 1 {
		t.Fatalf("tombstones = %v", rs.Tombstones)
	}
}

func TestReconstructFromCheckpointPlusTail(t *testing.T) {
	s := NewTableState()
	must(t, s.Apply(1, []Action{addData("a", 10)}))
	must(t, s.Apply(2, []Action{addData("b", 20)}))
	cp := BuildCheckpoint(1, s)
	tail := []CommittedManifest{
		{Seq: 1, Actions: []Action{addData("a", 10)}},           // below checkpoint: skipped
		{Seq: 2, Actions: []Action{addData("b", 20)}},           // below checkpoint: skipped
		{Seq: 3, Actions: []Action{addData("c", 5)}},            // applied
		{Seq: 4, Actions: []Action{removeData("a")}},            // applied
		{Seq: 5, Actions: []Action{addDV("dv", "b", 1)}},        // applied
		{Seq: 6, Actions: []Action{addData("late", 1_000_000)}}, // beyond as-of: skipped
	}
	got, err := Reconstruct(cp, tail, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalRows() != 24 { // b(20-1) + c(5)
		t.Fatalf("rows = %d", got.TotalRows())
	}
	if got.LastSeq != 5 {
		t.Fatalf("seq = %d", got.LastSeq)
	}
}

func TestReconstructIgnoresCheckpointNewerThanAsOf(t *testing.T) {
	s := NewTableState()
	must(t, s.Apply(5, []Action{addData("new", 100)}))
	cp := BuildCheckpoint(1, s)
	ms := []CommittedManifest{{Seq: 1, Actions: []Action{addData("old", 10)}}}
	got, err := Reconstruct(cp, ms, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalRows() != 10 {
		t.Fatalf("time travel below checkpoint: rows = %d", got.TotalRows())
	}
}

func TestHealthAssessment(t *testing.T) {
	s := NewTableState()
	must(t, s.Apply(1, []Action{addData("big", 10000), addData("small", 10)}))
	must(t, s.Apply(2, []Action{addDV("dv", "big", 6000)}))
	h := s.AssessHealth(100, 0.5)
	if h.NumFiles != 2 || h.SmallFiles != 1 || h.FragmentedFiles != 1 {
		t.Fatalf("health = %+v", h)
	}
	if h.Healthy() {
		t.Fatal("unhealthy state reported healthy")
	}
	h2 := NewTableState().AssessHealth(100, 0.5)
	if !h2.Healthy() {
		t.Fatal("empty table not healthy")
	}
}

func TestSnapshotCacheBasics(t *testing.T) {
	c := NewSnapshotCache()
	s := NewTableState()
	must(t, s.Apply(1, []Action{addData("a", 10)}))
	c.Put(7, s)
	got := c.Get(7, 1)
	if got == nil || got.TotalRows() != 10 {
		t.Fatalf("cache get = %v", got)
	}
	// mutation of returned state must not poison the cache
	must(t, got.Apply(2, []Action{removeData("a")}))
	again := c.Get(7, 1)
	if again.TotalRows() != 10 {
		t.Fatal("cache returned aliased state")
	}
	if c.Get(7, 99) != nil || c.Get(99, 1) != nil {
		t.Fatal("cache invented entries")
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 2 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func TestSnapshotCacheAdvance(t *testing.T) {
	c := NewSnapshotCache()
	s := NewTableState()
	must(t, s.Apply(1, []Action{addData("a", 10)}))
	c.Put(7, s)
	c.Advance(7, 2, []Action{addData("b", 5)})
	got := c.Get(7, 2)
	if got == nil || got.TotalRows() != 15 {
		t.Fatalf("advanced = %v", got)
	}
	// latest lookup via negative seq
	if latest := c.Get(7, -1); latest == nil || latest.LastSeq != 2 {
		t.Fatalf("latest = %v", latest)
	}
	// old snapshot still served (time travel)
	if old := c.Get(7, 1); old == nil || old.TotalRows() != 10 {
		t.Fatalf("old = %v", old)
	}
	// bad advance (unknown file removal) drops the table
	c.Advance(7, 3, []Action{removeData("ghost")})
	if c.Get(7, -1) != nil {
		t.Fatal("cache kept state after failed advance")
	}
}

func TestSnapshotCacheTrimAndInvalidate(t *testing.T) {
	c := NewSnapshotCache()
	for seq := int64(1); seq <= 5; seq++ {
		s := NewTableState()
		must(t, s.Apply(seq, []Action{addData(fmt.Sprintf("f%d", seq), 1)}))
		c.Put(1, s)
	}
	c.Trim(1, 4)
	if c.Get(1, 2) != nil {
		t.Fatal("trimmed snapshot still served")
	}
	if c.Get(1, 5) == nil {
		t.Fatal("latest snapshot trimmed")
	}
	c.Invalidate(1)
	if c.Get(1, 5) != nil {
		t.Fatal("invalidated table still served")
	}
}

func TestDeltaPublishing(t *testing.T) {
	s := NewTableState()
	must(t, s.Apply(1, []Action{addData("1.parquet", 3)}))
	m := CommittedManifest{Seq: 2, Path: "x2.json", Actions: []Action{
		addData("2.parquet", 2),
		addDV("x2dv.bin", "1.parquet", 1),
	}}
	must(t, s.Apply(2, m.Actions))
	body := ToDeltaLog(m, 1002, 1718000000000, s)
	adds, removes, info, err := ParseDeltaLog(body)
	if err != nil {
		t.Fatal(err)
	}
	if info == nil || info.TxnID != 1002 {
		t.Fatalf("commitInfo = %+v", info)
	}
	if len(adds) != 2 || len(removes) != 0 {
		t.Fatalf("adds=%d removes=%d", len(adds), len(removes))
	}
	if adds[0].Path != "2.parquet" || adds[0].NumRecords != 2 {
		t.Fatalf("add[0] = %+v", adds[0])
	}
	if adds[1].Path != "1.parquet" || adds[1].DeletionVector != "x2dv.bin" || adds[1].NumRecords != 3 {
		t.Fatalf("add[1] = %+v", adds[1])
	}
}

func TestDeltaLogName(t *testing.T) {
	if got := DeltaLogName(7); got != "_delta_log/00000000000000000007.json" {
		t.Fatalf("name = %q", got)
	}
	if !strings.HasPrefix(DeltaLogName(0), "_delta_log/") {
		t.Fatal("prefix missing")
	}
}

func TestPropertyReplayDeterminism(t *testing.T) {
	// Replaying the same manifests always yields the same state regardless of
	// the input slice order handed to Reconstruct.
	f := func(seed uint8) bool {
		n := int(seed%8) + 2
		var ms []CommittedManifest
		for i := 1; i <= n; i++ {
			ms = append(ms, CommittedManifest{
				Seq:     int64(i),
				Actions: []Action{addData(fmt.Sprintf("f%d", i), int64(i*10))},
			})
		}
		a, err1 := Reconstruct(nil, ms, -1)
		// reversed order input
		rev := make([]CommittedManifest, n)
		for i := range ms {
			rev[n-1-i] = ms[i]
		}
		b, err2 := Reconstruct(nil, rev, -1)
		if err1 != nil || err2 != nil {
			return false
		}
		return a.TotalRows() == b.TotalRows() && a.LastSeq == b.LastSeq && len(a.Files) == len(b.Files)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCheckpointEquivalence(t *testing.T) {
	// checkpoint(prefix) + tail replay == full replay
	f := func(seed uint8) bool {
		n := int(seed%10) + 3
		cut := n / 2
		var ms []CommittedManifest
		for i := 1; i <= n; i++ {
			acts := []Action{addData(fmt.Sprintf("f%d", i), int64(i))}
			if i%3 == 0 && i > 1 {
				acts = append(acts, removeData(fmt.Sprintf("f%d", i-1)))
			}
			ms = append(ms, CommittedManifest{Seq: int64(i), Actions: acts})
		}
		full, err := Reconstruct(nil, ms, -1)
		if err != nil {
			return false
		}
		prefix, err := Reconstruct(nil, ms[:cut], -1)
		if err != nil {
			return false
		}
		cp := BuildCheckpoint(1, prefix)
		viaCP, err := Reconstruct(cp, ms[cut:], -1)
		if err != nil {
			return false
		}
		if full.TotalRows() != viaCP.TotalRows() || len(full.Files) != len(viaCP.Files) {
			return false
		}
		for p, fe := range full.Files {
			ge, ok := viaCP.Files[p]
			if !ok || ge.Rows != fe.Rows || ge.DV != fe.DV || ge.DeletedRows != fe.DeletedRows {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
