package manifest

import (
	"encoding/json"
	"fmt"
)

// Iceberg-format publishing. The paper (5.4, footnote 1) publishes Delta
// today and plans "APIs of all major formats through metadata converters
// such as Delta UniForm and OneTable"; this file implements the Iceberg
// converter: a committed Polaris snapshot renders as an Iceberg
// table-metadata document plus a manifest-list equivalent. The structures
// follow Iceberg's v2 metadata JSON shape closely enough for structural
// interop tests, without the Avro encoding of real manifest files.

// IcebergDataFile describes one data file in an Iceberg manifest.
type IcebergDataFile struct {
	FilePath        string `json:"file_path"`
	FileFormat      string `json:"file_format"`
	RecordCount     int64  `json:"record_count"`
	FileSizeInBytes int64  `json:"file_size_in_bytes"`
	// Content 0 = data, 1 = position deletes (the DV stand-in).
	Content        int    `json:"content"`
	ReferencedFile string `json:"referenced_data_file,omitempty"`
	Partition      int    `json:"partition"`
}

// IcebergSnapshot is one snapshot entry of the table metadata.
type IcebergSnapshot struct {
	SnapshotID       int64             `json:"snapshot-id"`
	SequenceNumber   int64             `json:"sequence-number"`
	TimestampMs      int64             `json:"timestamp-ms"`
	Summary          map[string]string `json:"summary"`
	ManifestListPath string            `json:"manifest-list"`
}

// IcebergMetadata is the table-metadata document.
type IcebergMetadata struct {
	FormatVersion     int               `json:"format-version"`
	TableUUID         string            `json:"table-uuid"`
	Location          string            `json:"location"`
	LastSequenceNum   int64             `json:"last-sequence-number"`
	CurrentSnapshotID int64             `json:"current-snapshot-id"`
	Snapshots         []IcebergSnapshot `json:"snapshots"`
}

// ToIcebergManifestList renders a snapshot's live files (and their deletion
// vectors as position-delete entries) as an Iceberg manifest-list body.
func ToIcebergManifestList(state *TableState) []byte {
	var files []IcebergDataFile
	for _, f := range state.LiveFiles() {
		files = append(files, IcebergDataFile{
			FilePath: f.Path, FileFormat: "PARQUET",
			RecordCount: f.Rows, FileSizeInBytes: f.Size,
			Content: 0, Partition: f.Partition,
		})
		if f.DV != "" {
			files = append(files, IcebergDataFile{
				FilePath: f.DV, FileFormat: "PARQUET",
				RecordCount: f.DeletedRows, Content: 1,
				ReferencedFile: f.Path, Partition: f.Partition,
			})
		}
	}
	data, _ := json.MarshalIndent(files, "", "  ") // no unencodable values
	return data
}

// ToIcebergMetadata renders the table-metadata document for a snapshot chain.
func ToIcebergMetadata(tableID int64, location string, snaps []IcebergSnapshot) []byte {
	var last, current int64
	for _, s := range snaps {
		if s.SequenceNumber > last {
			last = s.SequenceNumber
			current = s.SnapshotID
		}
	}
	md := IcebergMetadata{
		FormatVersion:   2,
		TableUUID:       fmt.Sprintf("polaris-table-%d", tableID),
		Location:        location,
		LastSequenceNum: last, CurrentSnapshotID: current,
		Snapshots: snaps,
	}
	data, _ := json.MarshalIndent(md, "", "  ")
	return data
}

// IcebergManifestListName returns the manifest-list path for a sequence.
func IcebergManifestListName(seq int64) string {
	return fmt.Sprintf("metadata/snap-%020d.json", seq)
}

// IcebergMetadataName returns the versioned metadata file path.
func IcebergMetadataName(version int64) string {
	return fmt.Sprintf("metadata/v%d.metadata.json", version)
}

// ParseIcebergManifestList decodes a published manifest list.
func ParseIcebergManifestList(data []byte) ([]IcebergDataFile, error) {
	var out []IcebergDataFile
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("manifest: parse iceberg manifest list: %w", err)
	}
	return out, nil
}

// ParseIcebergMetadata decodes a published metadata document.
func ParseIcebergMetadata(data []byte) (*IcebergMetadata, error) {
	var out IcebergMetadata
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("manifest: parse iceberg metadata: %w", err)
	}
	return &out, nil
}
