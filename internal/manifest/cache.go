package manifest

import (
	"sync"
)

// SnapshotCache caches reconstructed table states per table, organized so
// any point-in-time snapshot can be served and incrementally advanced as new
// transactions commit (paper 3.2.1). Losing the cache never affects
// correctness: it is rebuilt by replay from the durable manifests.
type SnapshotCache struct {
	mu     sync.Mutex
	tables map[int64]*cachedTable
	// Hits and Misses count lookups for the whole cache.
	hits, misses int64
}

type cachedTable struct {
	// states holds reconstructed snapshots keyed by sequence; the latest is
	// advanced incrementally, older ones serve time-travel reads.
	states map[int64]*TableState
	latest int64
}

// NewSnapshotCache returns an empty cache.
func NewSnapshotCache() *SnapshotCache {
	return &SnapshotCache{tables: make(map[int64]*cachedTable)}
}

// Get returns the cached snapshot of tableID as of seq, or nil.
func (c *SnapshotCache) Get(tableID, seq int64) *TableState {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[tableID]
	if !ok {
		c.misses++
		return nil
	}
	if seq < 0 {
		seq = t.latest
	}
	s, ok := t.states[seq]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	return s.Clone() // callers must not mutate cached state
}

// Put stores a snapshot.
func (c *SnapshotCache) Put(tableID int64, s *TableState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[tableID]
	if !ok {
		t = &cachedTable{states: make(map[int64]*TableState)}
		c.tables[tableID] = t
	}
	t.states[s.LastSeq] = s.Clone()
	if s.LastSeq > t.latest {
		t.latest = s.LastSeq
	}
}

// Advance applies a newly committed manifest to the cached latest snapshot,
// keeping the cache warm without a full replay. It is a no-op when the table
// is not cached or the sequence is not the immediate successor path.
func (c *SnapshotCache) Advance(tableID, seq int64, actions []Action) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[tableID]
	if !ok {
		return
	}
	base, ok := t.states[t.latest]
	if !ok || seq <= t.latest {
		return
	}
	next := base.Clone()
	if err := next.Apply(seq, actions); err != nil {
		// A replay error means the cache is stale relative to storage; drop
		// the table and force reconstruction.
		delete(c.tables, tableID)
		return
	}
	t.states[seq] = next
	t.latest = seq
}

// Invalidate drops all cached snapshots for a table.
func (c *SnapshotCache) Invalidate(tableID int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.tables, tableID)
}

// Trim drops cached snapshots older than keepSeq for a table, bounding
// memory while preserving newer time-travel reads.
func (c *SnapshotCache) Trim(tableID, keepSeq int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[tableID]
	if !ok {
		return
	}
	for seq := range t.states {
		if seq < keepSeq && seq != t.latest {
			delete(t.states, seq)
		}
	}
}

// Stats returns cumulative hit/miss counts.
func (c *SnapshotCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
