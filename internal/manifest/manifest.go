// Package manifest implements Polaris's physical metadata layer (paper
// Sections 2.2, 3.2): transaction manifest files that record the changes a
// committed transaction made to a log-structured table, snapshot
// reconstruction by incremental replay, manifest checkpoints, and the
// Delta-log-style publishing transform used for async lake snapshots.
//
// A manifest file is a sequence of JSON-lines actions. Each BE task
// serializes its actions as one block of the shared transaction manifest
// blob; the SQL FE commits the aggregated block list (see objectstore).
// Because blocks are self-delimiting JSON lines, concatenation of blocks in
// any task order yields a valid manifest.
package manifest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"polaris/internal/colfile"
)

// Op is the kind of change an action records.
type Op string

// Action operations.
const (
	OpAdd    Op = "add"
	OpRemove Op = "remove"
)

// Kind is the kind of file an action refers to.
type Kind string

// File kinds.
const (
	KindData Kind = "data"
	KindDV   Kind = "dv"
)

// Action is one line of a transaction manifest: add or remove one data file
// or deletion-vector file.
type Action struct {
	Op   Op     `json:"op"`
	Kind Kind   `json:"kind"`
	Path string `json:"path"`
	// Rows and Size describe a data file (KindData).
	Rows int64 `json:"rows,omitempty"`
	Size int64 `json:"size,omitempty"`
	// Target is the data file a deletion vector applies to (KindDV).
	Target string `json:"target,omitempty"`
	// DeletedRows is the cardinality of a deletion vector (KindDV).
	DeletedRows int64 `json:"deleted_rows,omitempty"`
	// Partition is the distribution bucket the file belongs to, d(r) in the
	// paper's cell model.
	Partition int `json:"partition,omitempty"`
	// Sketches carries the sealed file's per-column statistics sketches
	// (KindData; schema-aligned). Optional: actions from before the stats
	// layer, or writers that skip them, simply leave the planner blind to
	// this file's NDV/min-max (row counts still come from Rows).
	Sketches []colfile.ColSketch `json:"sketches,omitempty"`
}

// Validate checks structural invariants of a single action.
func (a Action) Validate() error {
	if a.Op != OpAdd && a.Op != OpRemove {
		return fmt.Errorf("manifest: bad op %q", a.Op)
	}
	if a.Kind != KindData && a.Kind != KindDV {
		return fmt.Errorf("manifest: bad kind %q", a.Kind)
	}
	if a.Path == "" {
		return fmt.Errorf("manifest: empty path")
	}
	if a.Kind == KindDV && a.Target == "" {
		return fmt.Errorf("manifest: dv action %s missing target", a.Path)
	}
	return nil
}

// Encode serializes actions as JSON lines — the payload of one manifest block.
func Encode(actions []Action) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, a := range actions {
		_ = enc.Encode(a) // Action contains no unencodable values
	}
	return buf.Bytes()
}

// Decode parses a manifest file (or block) back into actions.
func Decode(data []byte) ([]Action, error) {
	var out []Action
	dec := json.NewDecoder(bytes.NewReader(data))
	for dec.More() {
		var a Action
		if err := dec.Decode(&a); err != nil {
			return nil, fmt.Errorf("manifest: decode action %d: %w", len(out), err)
		}
		if err := a.Validate(); err != nil {
			return nil, fmt.Errorf("manifest: action %d: %w", len(out), err)
		}
		out = append(out, a)
	}
	return out, nil
}

// FileEntry is the live state of one data file within a table snapshot.
type FileEntry struct {
	Path        string `json:"path"`
	Rows        int64  `json:"rows"`
	Size        int64  `json:"size"`
	Partition   int    `json:"partition"`
	DV          string `json:"dv,omitempty"`           // current deletion-vector file, if any
	DeletedRows int64  `json:"deleted_rows,omitempty"` // cardinality of DV
	AddedSeq    int64  `json:"added_seq"`              // commit sequence that added the file
	// Sketches are the file's per-column statistics sketches, copied from the
	// Add action (nil for files added before the stats layer existed).
	Sketches []colfile.ColSketch `json:"sketches,omitempty"`
}

// LiveRows returns the visible row count of the file.
func (f *FileEntry) LiveRows() int64 { return f.Rows - f.DeletedRows }

// Tombstone records a file that was logically removed, and when.
type Tombstone struct {
	Path       string `json:"path"`
	Kind       Kind   `json:"kind"`
	RemovedSeq int64  `json:"removed_seq"`
}

// TableState is a reconstructed snapshot of a log-structured table.
type TableState struct {
	Files      map[string]*FileEntry `json:"files"`
	Tombstones []Tombstone           `json:"tombstones,omitempty"`
	LastSeq    int64                 `json:"last_seq"` // highest sequence replayed
}

// NewTableState returns an empty state.
func NewTableState() *TableState {
	return &TableState{Files: make(map[string]*FileEntry)}
}

// Clone deep-copies the state.
func (s *TableState) Clone() *TableState {
	out := &TableState{
		Files:      make(map[string]*FileEntry, len(s.Files)),
		Tombstones: append([]Tombstone(nil), s.Tombstones...),
		LastSeq:    s.LastSeq,
	}
	for p, f := range s.Files {
		cp := *f
		out.Files[p] = &cp
	}
	return out
}

// Apply replays one committed manifest (its actions) at the given commit
// sequence onto the state. Replay is how the SQL BE physical metadata layer
// reconstructs a snapshot (paper 3.2.1).
func (s *TableState) Apply(seq int64, actions []Action) error {
	for _, a := range actions {
		switch {
		case a.Kind == KindData && a.Op == OpAdd:
			s.Files[a.Path] = &FileEntry{
				Path: a.Path, Rows: a.Rows, Size: a.Size,
				Partition: a.Partition, AddedSeq: seq,
				Sketches: a.Sketches,
			}
		case a.Kind == KindData && a.Op == OpRemove:
			if _, ok := s.Files[a.Path]; !ok {
				return fmt.Errorf("manifest: remove of unknown data file %s at seq %d", a.Path, seq)
			}
			delete(s.Files, a.Path)
			s.Tombstones = append(s.Tombstones, Tombstone{Path: a.Path, Kind: KindData, RemovedSeq: seq})
		case a.Kind == KindDV && a.Op == OpAdd:
			f, ok := s.Files[a.Target]
			if !ok {
				return fmt.Errorf("manifest: dv %s targets unknown data file %s at seq %d", a.Path, a.Target, seq)
			}
			f.DV = a.Path
			f.DeletedRows = a.DeletedRows
		case a.Kind == KindDV && a.Op == OpRemove:
			f, ok := s.Files[a.Target]
			if ok && f.DV == a.Path {
				f.DV = ""
				f.DeletedRows = 0
			}
			s.Tombstones = append(s.Tombstones, Tombstone{Path: a.Path, Kind: KindDV, RemovedSeq: seq})
		}
	}
	if seq > s.LastSeq {
		s.LastSeq = seq
	}
	return nil
}

// LiveFiles returns the live file entries sorted by path.
func (s *TableState) LiveFiles() []*FileEntry {
	out := make([]*FileEntry, 0, len(s.Files))
	for _, f := range s.Files {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// TotalRows returns the number of visible rows across live files.
func (s *TableState) TotalRows() int64 {
	var n int64
	//polaris:nondet LiveRows is a pure accessor and integer addition commutes, so file order cannot change the sum
	for _, f := range s.Files {
		n += f.LiveRows()
	}
	return n
}

// TotalSize returns the byte footprint of live data files.
func (s *TableState) TotalSize() int64 {
	var n int64
	for _, f := range s.Files {
		n += f.Size
	}
	return n
}

// Overlay applies an uncommitted transaction manifest on top of a committed
// snapshot, producing the view a subsequent statement of the same transaction
// must see (paper 3.2.3). The committed state is not modified.
func (s *TableState) Overlay(actions []Action) (*TableState, error) {
	out := s.Clone()
	if err := out.Apply(s.LastSeq, actions); err != nil {
		return nil, err
	}
	return out, nil
}

// Health summarizes storage quality for compaction decisions (paper 5.1).
type Health struct {
	NumFiles        int
	SmallFiles      int // files under the small-file threshold
	FragmentedFiles int // files whose deleted-row ratio exceeds threshold
	TotalRows       int64
	DeletedRows     int64
}

// Healthy reports whether no file needs compaction.
func (h Health) Healthy() bool { return h.SmallFiles == 0 && h.FragmentedFiles == 0 }

// AssessHealth scans live files against compaction thresholds: files with
// fewer than smallRows rows are "small"; files whose deleted fraction exceeds
// maxDeletedFrac are "fragmented".
func (s *TableState) AssessHealth(smallRows int64, maxDeletedFrac float64) Health {
	var h Health
	for _, f := range s.Files {
		h.NumFiles++
		h.TotalRows += f.Rows
		h.DeletedRows += f.DeletedRows
		if f.Rows < smallRows {
			h.SmallFiles++
		}
		if f.Rows > 0 && float64(f.DeletedRows)/float64(f.Rows) > maxDeletedFrac {
			h.FragmentedFiles++
		}
	}
	return h
}
