package compute

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// ErrAdmissionTimeout is returned by Admission.Acquire when a statement
// spent its full configured wait budget queued without being granted slots.
var ErrAdmissionTimeout = errors.New("compute: admission wait timeout")

// AdmissionCounters tracks admission-control outcomes. The struct is
// embedded in core.WorkStats so a serving front end's admission traffic is
// observable next to the engine's modeled-work counters; all fields are
// atomics and safe for concurrent update.
type AdmissionCounters struct {
	// Queued counts statements that found the fabric's leases dry and had
	// to wait (whether or not they were eventually admitted).
	Queued atomic.Int64
	// Admitted counts statements granted a slot lease (immediately or after
	// queueing).
	Admitted atomic.Int64
	// Rejected counts statements turned away because the admission queue
	// was already at its configured depth.
	Rejected atomic.Int64
	// TimedOut counts statements that waited the full WaitTimeout without
	// being granted slots.
	TimedOut atomic.Int64
	// Canceled counts statements whose caller context was canceled while
	// they were queued (client went away).
	Canceled atomic.Int64
	// QueueWaitNanos totals the time admitted statements spent queued.
	QueueWaitNanos atomic.Int64
}

// AdmissionConfig tunes an Admission controller.
type AdmissionConfig struct {
	// SlotsPerQuery is the worker-slot count requested per admitted
	// statement (the statement's intra-query DOP ceiling). Values < 1
	// request one slot.
	SlotsPerQuery int
	// MaxQueue bounds the number of statements waiting for slots: arrivals
	// beyond it are rejected with ErrQueueFull. < 0 means unbounded, 0
	// means reject whenever leases are dry.
	MaxQueue int
	// WaitTimeout bounds how long a queued statement waits before failing
	// with ErrAdmissionTimeout. 0 means wait until the caller's context
	// gives up.
	WaitTimeout time.Duration
}

// Admission is the front-door admission controller for a serving process:
// every statement acquires a slot lease through it before executing, so
// concurrent sessions multiplex over the same fabric slot pool that sizes
// intra-query worker pools. When leases run dry, statements queue FIFO up
// to MaxQueue deep and at most WaitTimeout long.
type Admission struct {
	f   *Fabric
	cfg AdmissionConfig
	ctr *AdmissionCounters
}

// NewAdmission creates an admission controller over the fabric, recording
// outcomes into ctr (which the caller owns — typically core.WorkStats'
// embedded counters). A nil ctr gets a private counter set.
func NewAdmission(f *Fabric, cfg AdmissionConfig, ctr *AdmissionCounters) *Admission {
	if ctr == nil {
		ctr = &AdmissionCounters{}
	}
	return &Admission{f: f, cfg: cfg, ctr: ctr}
}

// Counters returns the controller's counter set.
func (a *Admission) Counters() *AdmissionCounters { return a.ctr }

// Waiting reports how many statements are currently queued on the fabric.
func (a *Admission) Waiting() int { return a.f.QueuedLeases() }

// Acquire admits one statement: it returns a granted slot lease (the caller
// must Release it when the statement finishes) and the time spent queued.
// Failure modes, each counted exactly once:
//
//   - ErrQueueFull — leases dry and MaxQueue waiters already queued
//   - ErrAdmissionTimeout — queued for the full WaitTimeout
//   - ctx.Err() — the caller's context was canceled or expired while queued
func (a *Admission) Acquire(ctx context.Context) (*SlotLease, time.Duration, error) {
	want := a.cfg.SlotsPerQuery
	if want < 1 {
		want = 1
	}
	wctx := ctx
	if a.cfg.WaitTimeout > 0 {
		var cancel context.CancelFunc
		wctx, cancel = context.WithTimeout(ctx, a.cfg.WaitTimeout)
		defer cancel()
	}
	start := time.Now()
	lease, queued, err := a.f.LeaseSlotsCtx(wctx, want, a.cfg.MaxQueue)
	wait := time.Since(start)
	if queued {
		a.ctr.Queued.Add(1)
	}
	switch {
	case err == nil:
		a.ctr.Admitted.Add(1)
		if queued {
			a.ctr.QueueWaitNanos.Add(wait.Nanoseconds())
		}
		return lease, wait, nil
	case errors.Is(err, ErrQueueFull):
		a.ctr.Rejected.Add(1)
		return nil, wait, err
	case ctx.Err() != nil:
		// the caller's own context gave up (cancel or caller deadline)
		a.ctr.Canceled.Add(1)
		return nil, wait, ctx.Err()
	default:
		// only the WaitTimeout layer expired
		a.ctr.TimedOut.Add(1)
		return nil, wait, ErrAdmissionTimeout
	}
}
