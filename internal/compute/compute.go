// Package compute simulates the elastic compute fabric Polaris runs on
// (paper Sections 1, 3.3): a topology of compute servers, each with CPU
// slots, an in-memory hot cache and an SSD cache over remote storage. The
// fabric supports elastic (unbounded, cost-based) and bounded (fixed
// capacity) allocation so the Fig. 8 experiment can compare both models.
//
// All timing is *simulated*: operations return the duration they would take
// on datacenter hardware according to a calibrated cost model, while actually
// executing at laptop scale. Benchmarks report simulated time, which is what
// makes the paper's figure shapes reproducible without the paper's testbed.
package compute

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"polaris/internal/objectstore"
)

// CostModel holds the calibrated constants that translate work into
// simulated time. The defaults approximate cloud warehouse hardware:
// remote object storage ~8ms first byte + 200MB/s per stream, SSD ~10x
// faster, memory ~100x, and a fixed per-task scheduling overhead.
type CostModel struct {
	RemoteBaseLatency time.Duration
	RemoteBytesPerSec float64
	SSDBytesPerSec    float64
	MemBytesPerSec    float64
	// RowCPUCost is the simulated CPU time to process one row through one
	// operator.
	RowCPUCost time.Duration
	// TaskOverhead is per-task scheduling/startup cost.
	TaskOverhead time.Duration
	// ProvisionDelay is the time to add a node to the topology.
	ProvisionDelay time.Duration
}

// DefaultCostModel returns the calibrated constants used by the benchmarks.
func DefaultCostModel() *CostModel {
	return &CostModel{
		RemoteBaseLatency: 8 * time.Millisecond,
		RemoteBytesPerSec: 200e6,
		SSDBytesPerSec:    2e9,
		MemBytesPerSec:    20e9,
		RowCPUCost:        120 * time.Nanosecond,
		TaskOverhead:      15 * time.Millisecond,
		ProvisionDelay:    2 * time.Second,
	}
}

// RemoteRead returns the simulated duration of reading n bytes from remote
// storage.
func (c *CostModel) RemoteRead(n int64) time.Duration {
	return c.RemoteBaseLatency + time.Duration(float64(n)/c.RemoteBytesPerSec*float64(time.Second))
}

// SSDRead returns the simulated duration of reading n bytes from local SSD.
func (c *CostModel) SSDRead(n int64) time.Duration {
	return time.Duration(float64(n) / c.SSDBytesPerSec * float64(time.Second))
}

// MemRead returns the simulated duration of reading n bytes from memory.
func (c *CostModel) MemRead(n int64) time.Duration {
	return time.Duration(float64(n) / c.MemBytesPerSec * float64(time.Second))
}

// RemoteWrite returns the simulated duration of writing n bytes to remote
// storage.
func (c *CostModel) RemoteWrite(n int64) time.Duration {
	return c.RemoteBaseLatency + time.Duration(float64(n)/c.RemoteBytesPerSec*float64(time.Second))
}

// CPU returns the simulated duration of processing rows through an operator.
func (c *CostModel) CPU(rows int64) time.Duration {
	return time.Duration(rows) * c.RowCPUCost
}

// CacheStats counts cache effectiveness per node.
type CacheStats struct {
	MemHits, SSDHits, Misses int64
	BytesFromRemote          int64
}

// Node is one compute server: an Execution Service + SQL Server instance in
// the paper's architecture. Caches are write-through over the object store;
// losing a node never loses state (paper 3.3).
type Node struct {
	ID    int
	Slots int // concurrent task capacity

	mu       sync.Mutex
	alive    bool
	memCache *lru
	ssdCache *lru
	stats    CacheStats

	model *CostModel
}

// NewNode creates a node with the given cache capacities in bytes.
func NewNode(id, slots int, memBytes, ssdBytes int64, model *CostModel) *Node {
	return &Node{
		ID: id, Slots: slots, alive: true,
		memCache: newLRU(memBytes),
		ssdCache: newLRU(ssdBytes),
		model:    model,
	}
}

// Alive reports whether the node is in the topology.
func (n *Node) Alive() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.alive
}

// Kill removes the node from the topology, dropping its caches. In-flight
// tasks on a killed node fail and are retried elsewhere by the DCP.
func (n *Node) Kill() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.alive = false
	n.memCache.clear()
	n.ssdCache.clear()
}

// Revive returns a node to the topology with cold caches.
func (n *Node) Revive() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.alive = true
}

// Stats returns a copy of the node's cache statistics.
func (n *Node) Stats() CacheStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// ReadFile reads a blob through the node's cache hierarchy, returning the
// data and the simulated time the read would take. Immutability of committed
// files (paper Section 4) is what makes this cache trivially coherent: a
// cached path never changes, so invalidation is never needed.
func (n *Node) ReadFile(store *objectstore.Store, path string) ([]byte, time.Duration, error) {
	n.mu.Lock()
	if data, ok := n.memCache.get(path); ok {
		n.stats.MemHits++
		d := n.model.MemRead(int64(len(data)))
		n.mu.Unlock()
		return data, d, nil
	}
	if data, ok := n.ssdCache.get(path); ok {
		n.stats.SSDHits++
		n.memCache.put(path, data)
		d := n.model.SSDRead(int64(len(data)))
		n.mu.Unlock()
		return data, d, nil
	}
	n.stats.Misses++
	n.mu.Unlock()

	data, err := store.Get(path)
	if err != nil {
		return nil, 0, err
	}
	n.mu.Lock()
	n.stats.BytesFromRemote += int64(len(data))
	n.memCache.put(path, data)
	n.ssdCache.put(path, data)
	n.mu.Unlock()
	return data, n.model.RemoteRead(int64(len(data))), nil
}

// WriteFile writes a blob to remote storage (write-through: the new file is
// also warm in this node's cache) and returns simulated duration.
func (n *Node) WriteFile(store *objectstore.Store, path string, data []byte, creatorStamp int64) (time.Duration, error) {
	if err := store.Put(path, data, creatorStamp); err != nil {
		return 0, err
	}
	n.mu.Lock()
	n.memCache.put(path, data)
	n.ssdCache.put(path, data)
	n.mu.Unlock()
	return n.model.RemoteWrite(int64(len(data))), nil
}

// InvalidateCached drops a path from this node's caches (used when a file is
// garbage-collected; committed files are otherwise immutable).
func (n *Node) InvalidateCached(path string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.memCache.remove(path)
	n.ssdCache.remove(path)
}

// lru is a byte-capacity-bounded cache.
type lru struct {
	capacity int64
	used     int64
	entries  map[string]*lruEntry
	head     *lruEntry // most recent
	tail     *lruEntry // least recent
}

type lruEntry struct {
	key        string
	data       []byte
	prev, next *lruEntry
}

func newLRU(capacity int64) *lru {
	return &lru{capacity: capacity, entries: make(map[string]*lruEntry)}
}

func (l *lru) get(key string) ([]byte, bool) {
	e, ok := l.entries[key]
	if !ok {
		return nil, false
	}
	l.moveToFront(e)
	return e.data, true
}

func (l *lru) put(key string, data []byte) {
	if int64(len(data)) > l.capacity {
		return // larger than the whole cache
	}
	if e, ok := l.entries[key]; ok {
		l.used += int64(len(data)) - int64(len(e.data))
		e.data = data
		l.moveToFront(e)
	} else {
		e := &lruEntry{key: key, data: data}
		l.entries[key] = e
		l.pushFront(e)
		l.used += int64(len(data))
	}
	for l.used > l.capacity && l.tail != nil {
		l.evict(l.tail)
	}
}

func (l *lru) remove(key string) {
	if e, ok := l.entries[key]; ok {
		l.evict(e)
	}
}

func (l *lru) clear() {
	l.entries = make(map[string]*lruEntry)
	l.head, l.tail, l.used = nil, nil, 0
}

func (l *lru) evict(e *lruEntry) {
	l.unlink(e)
	delete(l.entries, e.key)
	l.used -= int64(len(e.data))
}

func (l *lru) pushFront(e *lruEntry) {
	e.prev = nil
	e.next = l.head
	if l.head != nil {
		l.head.prev = e
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
}

func (l *lru) unlink(e *lruEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (l *lru) moveToFront(e *lruEntry) {
	l.unlink(e)
	l.pushFront(e)
}

// Fabric manages the node topology. In elastic mode (Fabric DW / serverless)
// the pool grows to whatever a job's cost-based estimate requires; in bounded
// mode (Synapse SQL DW gen2) the pool is capped, and oversized jobs queue on
// fewer resources (Fig. 8).
type Fabric struct {
	mu       sync.Mutex
	nodes    []*Node
	nextID   int
	elastic  bool
	maxNodes int
	model    *CostModel

	memBytes, ssdBytes int64
	slots              int
	provisioned        int // nodes ever provisioned (elasticity metric)
	leasedSlots        int // slots currently leased for intra-query parallelism
	waiters            []*slotWaiter
}

// slotWaiter is one queued LeaseSlotsCtx call: granted leases arrive on ch
// (buffered so the granter never blocks), and a waiter that gives up removes
// itself from the queue under f.mu before returning.
type slotWaiter struct {
	want int
	ch   chan *SlotLease
}

// Config configures a Fabric.
type Config struct {
	Elastic   bool
	MaxNodes  int // cap in bounded mode; ignored when Elastic
	InitNodes int
	SlotsPer  int
	MemBytes  int64
	SSDBytes  int64
	Model     *CostModel
}

// NewFabric creates a fabric with the initial topology.
func NewFabric(cfg Config) *Fabric {
	if cfg.Model == nil {
		cfg.Model = DefaultCostModel()
	}
	if cfg.SlotsPer == 0 {
		cfg.SlotsPer = 4
	}
	if cfg.MemBytes == 0 {
		cfg.MemBytes = 1 << 28
	}
	if cfg.SSDBytes == 0 {
		cfg.SSDBytes = 1 << 31
	}
	f := &Fabric{
		elastic: cfg.Elastic, maxNodes: cfg.MaxNodes, model: cfg.Model,
		memBytes: cfg.MemBytes, ssdBytes: cfg.SSDBytes, slots: cfg.SlotsPer,
	}
	for i := 0; i < cfg.InitNodes; i++ {
		f.addNodeLocked()
	}
	return f
}

func (f *Fabric) addNodeLocked() *Node {
	n := NewNode(f.nextID, f.slots, f.memBytes, f.ssdBytes, f.model)
	f.nextID++
	f.nodes = append(f.nodes, n)
	f.provisioned++
	return n
}

// Model returns the fabric's cost model.
func (f *Fabric) Model() *CostModel { return f.model }

// Nodes returns the live nodes.
func (f *Fabric) Nodes() []*Node {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*Node, 0, len(f.nodes))
	for _, n := range f.nodes {
		if n.Alive() {
			out = append(out, n)
		}
	}
	return out
}

// Size returns the number of live nodes.
func (f *Fabric) Size() int { return len(f.Nodes()) }

// Provisioned returns how many nodes were ever added (elasticity metric).
func (f *Fabric) Provisioned() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.provisioned
}

// AllocateForJob sizes the topology for a job needing `want` parallel units
// and returns the nodes to use plus the simulated provisioning delay. In
// elastic mode the fabric grows to ceil(want/slots) nodes; in bounded mode it
// grows at most to MaxNodes.
func (f *Fabric) AllocateForJob(want int) ([]*Node, time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	needNodes := (want + f.slots - 1) / f.slots
	if needNodes < 1 {
		needNodes = 1
	}
	if !f.elastic && f.maxNodes > 0 && needNodes > f.maxNodes {
		needNodes = f.maxNodes
	}
	var added int
	for f.liveCountLocked() < needNodes {
		f.addNodeLocked()
		added++
	}
	var delay time.Duration
	if added > 0 {
		// provisioning proceeds in parallel; one delay covers the batch
		delay = f.model.ProvisionDelay
		// growth frees capacity: queued lease waiters can now be admitted
		f.wakeWaitersLocked()
	}
	live := make([]*Node, 0, needNodes)
	for _, n := range f.nodes {
		if n.Alive() {
			live = append(live, n)
			if len(live) == needNodes {
				break
			}
		}
	}
	return live, delay
}

func (f *Fabric) liveCountLocked() int {
	c := 0
	for _, n := range f.nodes {
		if n.Alive() {
			c++
		}
	}
	return c
}

// TotalSlots returns the total task-slot capacity across live nodes.
func (f *Fabric) TotalSlots() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.totalSlotsLocked()
}

func (f *Fabric) totalSlotsLocked() int {
	total := 0
	for _, n := range f.nodes {
		if n.Alive() {
			total += n.Slots
		}
	}
	return total
}

// SlotLease is a reservation of compute slots for intra-query parallelism
// (the morsel-driven executor's worker pool). Release returns the slots to
// the fabric; it is idempotent.
type SlotLease struct {
	f        *Fabric
	n        int
	released bool
	mu       sync.Mutex
}

// Granted returns how many slots the lease holds.
func (l *SlotLease) Granted() int { return l.n }

// Release returns the leased slots to the fabric.
func (l *SlotLease) Release() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.released {
		return
	}
	l.released = true
	l.f.mu.Lock()
	l.f.leasedSlots -= l.n
	l.f.wakeWaitersLocked()
	l.f.mu.Unlock()
}

// LeaseSlots reserves up to `want` slots for a query's worker pool, bounded
// by the slots not already leased by concurrent queries. A query always gets
// at least one slot (it degrades to serial execution rather than blocking),
// so leasing never deadlocks. The lease is accounting only: it sizes worker
// pools, it does not pin tasks to particular nodes.
func (f *Fabric) LeaseSlots(want int) *SlotLease {
	if want < 1 {
		want = 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	free := f.totalSlotsLocked() - f.leasedSlots
	grant := want
	if grant > free {
		grant = free
	}
	if grant < 1 {
		grant = 1
	}
	f.leasedSlots += grant
	return &SlotLease{f: f, n: grant}
}

// LeasedSlots reports how many slots are currently leased.
func (f *Fabric) LeasedSlots() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.leasedSlots
}

// FreeSlots reports the slots not currently leased. It can be negative:
// LeaseSlots always grants at least one slot, so heavy contention may
// over-subscribe the fabric (queries degrade rather than deadlock).
func (f *Fabric) FreeSlots() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.totalSlotsLocked() - f.leasedSlots
}

// QueuedLeases reports how many LeaseSlotsCtx calls are waiting for slots.
func (f *Fabric) QueuedLeases() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.waiters)
}

// ErrQueueFull is returned by LeaseSlotsCtx when the fabric has no free
// slots and the waiter queue is already at its configured depth.
var ErrQueueFull = errors.New("compute: lease queue full")

// LeaseSlotsCtx is the admission-control variant of LeaseSlots: when the
// fabric has free slots (and no earlier waiter is queued) it grants
// min(want, free) immediately, exactly like LeaseSlots except that it never
// over-subscribes. When leases have run dry the call joins a FIFO waiter
// queue and blocks until a release (or topology growth) frees slots, the
// context is canceled, or its deadline expires. maxQueued bounds the queue:
// a call arriving when maxQueued waiters are already queued fails fast with
// ErrQueueFull (maxQueued < 0 means unbounded, 0 means never queue).
//
// The returned queued flag reports whether the call had to wait, on success
// and failure alike, so callers can count queueing separately from grants.
func (f *Fabric) LeaseSlotsCtx(ctx context.Context, want, maxQueued int) (lease *SlotLease, queued bool, err error) {
	if want < 1 {
		want = 1
	}
	f.mu.Lock()
	if len(f.waiters) == 0 {
		if free := f.totalSlotsLocked() - f.leasedSlots; free > 0 {
			grant := min(want, free)
			f.leasedSlots += grant
			f.mu.Unlock()
			return &SlotLease{f: f, n: grant}, false, nil
		}
	}
	if maxQueued >= 0 && len(f.waiters) >= maxQueued {
		f.mu.Unlock()
		return nil, false, ErrQueueFull
	}
	w := &slotWaiter{want: want, ch: make(chan *SlotLease, 1)}
	f.waiters = append(f.waiters, w)
	f.mu.Unlock()

	select {
	case l := <-w.ch:
		return l, true, nil
	case <-ctx.Done():
		f.mu.Lock()
		for i, x := range f.waiters {
			if x == w {
				f.waiters = append(f.waiters[:i], f.waiters[i+1:]...)
				break
			}
		}
		f.mu.Unlock()
		// A grant may have raced ahead of the dequeue (wakeWaitersLocked
		// sends under f.mu, so after the removal above either the lease is
		// already in ch or it will never arrive): hand it straight back.
		select {
		case l := <-w.ch:
			l.Release()
		default:
		}
		return nil, true, ctx.Err()
	}
}

// wakeWaitersLocked grants slots to queued waiters in FIFO order while free
// slots remain. Callers hold f.mu; the grant channel is buffered so the send
// never blocks under the lock.
func (f *Fabric) wakeWaitersLocked() {
	for len(f.waiters) > 0 {
		free := f.totalSlotsLocked() - f.leasedSlots
		if free < 1 {
			return
		}
		w := f.waiters[0]
		f.waiters = f.waiters[1:]
		grant := min(w.want, free)
		f.leasedSlots += grant
		w.ch <- &SlotLease{f: f, n: grant}
	}
}

// KillNode removes node id from the topology; returns false if unknown.
func (f *Fabric) KillNode(id int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, n := range f.nodes {
		if n.ID == id && n.Alive() {
			n.Kill()
			return true
		}
	}
	return false
}

// String summarizes the topology.
func (f *Fabric) String() string {
	mode := "bounded"
	if f.elastic {
		mode = "elastic"
	}
	return fmt.Sprintf("fabric{%s, live=%d, provisioned=%d}", mode, f.Size(), f.Provisioned())
}
