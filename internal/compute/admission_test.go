package compute

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// oneSlotFabric is the smallest possible slot pool: admission contention is
// deterministic because a single held lease makes every arrival queue.
func oneSlotFabric() *Fabric {
	return NewFabric(Config{Elastic: false, MaxNodes: 1, InitNodes: 1, SlotsPer: 1})
}

func waitQueued(t *testing.T, f *Fabric, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for f.QueuedLeases() != n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d queued waiters (have %d)", n, f.QueuedLeases())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAdmissionImmediateGrant(t *testing.T) {
	f := oneSlotFabric()
	adm := NewAdmission(f, AdmissionConfig{SlotsPerQuery: 4, MaxQueue: 8}, nil)
	lease, wait, err := adm.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if lease.Granted() != 1 {
		t.Fatalf("granted %d slots from a 1-slot fabric", lease.Granted())
	}
	if got := adm.Counters().Admitted.Load(); got != 1 {
		t.Fatalf("Admitted = %d, want 1", got)
	}
	if got := adm.Counters().Queued.Load(); got != 0 {
		t.Fatalf("Queued = %d, want 0 (free slots available)", got)
	}
	_ = wait
	lease.Release()
	if got := f.LeasedSlots(); got != 0 {
		t.Fatalf("LeasedSlots = %d after release, want 0", got)
	}
}

func TestAdmissionQueueFullRejection(t *testing.T) {
	f := oneSlotFabric()
	hold := f.LeaseSlots(1)
	defer hold.Release()

	adm := NewAdmission(f, AdmissionConfig{SlotsPerQuery: 1, MaxQueue: 0}, nil)
	if _, _, err := adm.Acquire(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	c := adm.Counters()
	if c.Rejected.Load() != 1 || c.Queued.Load() != 0 || c.Admitted.Load() != 0 {
		t.Fatalf("counters after rejection: rejected=%d queued=%d admitted=%d, want 1/0/0",
			c.Rejected.Load(), c.Queued.Load(), c.Admitted.Load())
	}

	// With one queue seat, the first dry arrival queues and the second is
	// rejected — exercised with a live waiter to pin the boundary.
	adm1 := NewAdmission(f, AdmissionConfig{SlotsPerQuery: 1, MaxQueue: 1}, nil)
	done := make(chan error, 1)
	go func() {
		lease, _, err := adm1.Acquire(context.Background())
		if lease != nil {
			lease.Release()
		}
		done <- err
	}()
	waitQueued(t, f, 1)
	if _, _, err := adm1.Acquire(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("second waiter err = %v, want ErrQueueFull", err)
	}
	hold.Release()
	if err := <-done; err != nil {
		t.Fatalf("queued waiter should be admitted after release, got %v", err)
	}
	c = adm1.Counters()
	if c.Admitted.Load() != 1 || c.Queued.Load() != 1 || c.Rejected.Load() != 1 {
		t.Fatalf("counters: admitted=%d queued=%d rejected=%d, want 1/1/1",
			c.Admitted.Load(), c.Queued.Load(), c.Rejected.Load())
	}
	if c.QueueWaitNanos.Load() <= 0 {
		t.Fatalf("QueueWaitNanos = %d, want > 0 for a queued admission", c.QueueWaitNanos.Load())
	}
	if got := f.LeasedSlots(); got != 0 {
		t.Fatalf("LeasedSlots = %d after all releases, want 0", got)
	}
}

func TestAdmissionFIFOOrder(t *testing.T) {
	f := oneSlotFabric()
	hold := f.LeaseSlots(1)
	adm := NewAdmission(f, AdmissionConfig{SlotsPerQuery: 1, MaxQueue: 16}, nil)

	const waiters = 5
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lease, _, err := adm.Acquire(context.Background())
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			lease.Release() // hands the slot to the next waiter in line
		}(i)
		// enqueue strictly one at a time so arrival order is defined
		waitQueued(t, f, i+1)
	}
	hold.Release()
	wg.Wait()

	for i, got := range order {
		if got != i {
			t.Fatalf("admission order %v is not FIFO", order)
		}
	}
	c := adm.Counters()
	if c.Admitted.Load() != waiters || c.Queued.Load() != waiters {
		t.Fatalf("admitted=%d queued=%d, want %d/%d", c.Admitted.Load(), c.Queued.Load(), waiters, waiters)
	}
	if got := f.LeasedSlots(); got != 0 {
		t.Fatalf("LeasedSlots = %d, want 0", got)
	}
}

func TestAdmissionCancelWhileQueued(t *testing.T) {
	f := oneSlotFabric()
	hold := f.LeaseSlots(1)
	adm := NewAdmission(f, AdmissionConfig{SlotsPerQuery: 1, MaxQueue: 16}, nil)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := adm.Acquire(ctx)
		done <- err
	}()
	waitQueued(t, f, 1)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	c := adm.Counters()
	if c.Canceled.Load() != 1 || c.Queued.Load() != 1 || c.Admitted.Load() != 0 || c.TimedOut.Load() != 0 {
		t.Fatalf("counters: canceled=%d queued=%d admitted=%d timedOut=%d, want 1/1/0/0",
			c.Canceled.Load(), c.Queued.Load(), c.Admitted.Load(), c.TimedOut.Load())
	}
	if got := f.QueuedLeases(); got != 0 {
		t.Fatalf("QueuedLeases = %d after cancel, want 0 (waiter must dequeue cleanly)", got)
	}
	hold.Release()
	if got := f.LeasedSlots(); got != 0 {
		t.Fatalf("LeasedSlots = %d, want 0 — canceled waiter leaked a grant", got)
	}
}

func TestAdmissionWaitTimeout(t *testing.T) {
	f := oneSlotFabric()
	hold := f.LeaseSlots(1)
	defer hold.Release()
	adm := NewAdmission(f, AdmissionConfig{SlotsPerQuery: 1, MaxQueue: 16, WaitTimeout: 20 * time.Millisecond}, nil)

	_, wait, err := adm.Acquire(context.Background())
	if !errors.Is(err, ErrAdmissionTimeout) {
		t.Fatalf("err = %v, want ErrAdmissionTimeout", err)
	}
	if wait < 20*time.Millisecond {
		t.Fatalf("reported wait %v shorter than the 20ms timeout", wait)
	}
	c := adm.Counters()
	if c.TimedOut.Load() != 1 || c.Queued.Load() != 1 || c.Admitted.Load() != 0 || c.Canceled.Load() != 0 {
		t.Fatalf("counters: timedOut=%d queued=%d admitted=%d canceled=%d, want 1/1/0/0",
			c.TimedOut.Load(), c.Queued.Load(), c.Admitted.Load(), c.Canceled.Load())
	}
	if got := f.QueuedLeases(); got != 0 {
		t.Fatalf("QueuedLeases = %d after timeout, want 0", got)
	}
}

// TestAdmissionCancelGrantRace hammers the cancel-vs-grant window: a grant
// that lands just as the waiter gives up must be handed straight back, never
// leaked. Run under -race this also exercises the locking protocol.
func TestAdmissionCancelGrantRace(t *testing.T) {
	f := oneSlotFabric()
	for i := 0; i < 200; i++ {
		hold := f.LeaseSlots(1)
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			lease, _, err := f.LeaseSlotsCtx(ctx, 1, -1)
			if err == nil {
				lease.Release()
			}
			close(done)
		}()
		waitQueued(t, f, 1)
		go cancel()
		hold.Release() // races the cancel
		<-done
		cancel()
		if got := f.LeasedSlots(); got != 0 {
			t.Fatalf("iteration %d: LeasedSlots = %d, want 0", i, got)
		}
		if got := f.QueuedLeases(); got != 0 {
			t.Fatalf("iteration %d: QueuedLeases = %d, want 0", i, got)
		}
	}
}

func TestLeaseSlotsCtxNeverOverSubscribes(t *testing.T) {
	f := NewFabric(Config{Elastic: false, MaxNodes: 1, InitNodes: 1, SlotsPer: 4})
	lease, queued, err := f.LeaseSlotsCtx(context.Background(), 16, -1)
	if err != nil || queued {
		t.Fatalf("grant failed: queued=%v err=%v", queued, err)
	}
	if lease.Granted() != 4 {
		t.Fatalf("granted %d, want the fabric's 4 free slots", lease.Granted())
	}
	if f.FreeSlots() != 0 {
		t.Fatalf("FreeSlots = %d, want 0", f.FreeSlots())
	}
	lease.Release()
	if f.FreeSlots() != 4 {
		t.Fatalf("FreeSlots = %d after release, want 4", f.FreeSlots())
	}
}
