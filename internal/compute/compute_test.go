package compute

import (
	"fmt"
	"testing"
	"time"

	"polaris/internal/objectstore"
)

func testFabric(elastic bool, maxNodes, init int) *Fabric {
	return NewFabric(Config{
		Elastic: elastic, MaxNodes: maxNodes, InitNodes: init,
		SlotsPer: 4, MemBytes: 1 << 20, SSDBytes: 1 << 24,
	})
}

func TestCostModelMonotonicity(t *testing.T) {
	m := DefaultCostModel()
	if m.RemoteRead(1000) >= m.RemoteRead(1_000_000) {
		t.Fatal("remote read not monotonic in bytes")
	}
	if m.MemRead(1<<20) >= m.SSDRead(1<<20) || m.SSDRead(1<<20) >= m.RemoteRead(1<<20) {
		t.Fatal("cache tiers not ordered mem < ssd < remote")
	}
	if m.CPU(0) != 0 || m.CPU(100) != 100*m.RowCPUCost {
		t.Fatal("cpu cost wrong")
	}
}

func TestNodeReadThroughCache(t *testing.T) {
	store := objectstore.New()
	data := make([]byte, 1000)
	if err := store.Put("f", data, 0); err != nil {
		t.Fatal(err)
	}
	n := NewNode(0, 4, 1<<20, 1<<24, DefaultCostModel())

	_, d1, err := n.ReadFile(store, "f")
	if err != nil {
		t.Fatal(err)
	}
	_, d2, err := n.ReadFile(store, "f")
	if err != nil {
		t.Fatal(err)
	}
	if d2 >= d1 {
		t.Fatalf("cached read (%v) not faster than cold read (%v)", d2, d1)
	}
	st := n.Stats()
	if st.Misses != 1 || st.MemHits != 1 || st.BytesFromRemote != 1000 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNodeSSDHitAfterMemEviction(t *testing.T) {
	store := objectstore.New()
	model := DefaultCostModel()
	// mem fits one file, ssd fits many
	n := NewNode(0, 4, 1200, 1<<24, model)
	for i := 0; i < 3; i++ {
		_ = store.Put(fmt.Sprintf("f%d", i), make([]byte, 1000), 0)
	}
	_, _, _ = n.ReadFile(store, "f0")
	_, _, _ = n.ReadFile(store, "f1") // evicts f0 from mem, stays on ssd
	_, _, _ = n.ReadFile(store, "f0")
	st := n.Stats()
	if st.SSDHits != 1 {
		t.Fatalf("stats = %+v, want one ssd hit", st)
	}
}

func TestNodeWriteThrough(t *testing.T) {
	store := objectstore.New()
	n := NewNode(0, 4, 1<<20, 1<<24, DefaultCostModel())
	d, err := n.WriteFile(store, "out", make([]byte, 500), 7)
	if err != nil || d <= 0 {
		t.Fatalf("write: %v %v", d, err)
	}
	if !store.Exists("out") {
		t.Fatal("write-through did not reach store")
	}
	_, rd, _ := n.ReadFile(store, "out")
	if n.Stats().Misses != 0 {
		t.Fatalf("read after write missed cache (%v)", rd)
	}
}

func TestNodeKillDropsCaches(t *testing.T) {
	store := objectstore.New()
	_ = store.Put("f", make([]byte, 100), 0)
	n := NewNode(0, 4, 1<<20, 1<<24, DefaultCostModel())
	_, _, _ = n.ReadFile(store, "f")
	n.Kill()
	if n.Alive() {
		t.Fatal("killed node alive")
	}
	n.Revive()
	_, _, _ = n.ReadFile(store, "f")
	if n.Stats().Misses != 2 {
		t.Fatalf("revived node kept caches: %+v", n.Stats())
	}
}

func TestInvalidateCached(t *testing.T) {
	store := objectstore.New()
	_ = store.Put("f", make([]byte, 100), 0)
	n := NewNode(0, 4, 1<<20, 1<<24, DefaultCostModel())
	_, _, _ = n.ReadFile(store, "f")
	n.InvalidateCached("f")
	_, _, _ = n.ReadFile(store, "f")
	if n.Stats().Misses != 2 {
		t.Fatalf("invalidate ineffective: %+v", n.Stats())
	}
}

func TestLRUEviction(t *testing.T) {
	l := newLRU(250)
	l.put("a", make([]byte, 100))
	l.put("b", make([]byte, 100))
	if _, ok := l.get("a"); !ok {
		t.Fatal("a evicted prematurely")
	}
	l.put("c", make([]byte, 100)) // must evict b (a was touched)
	if _, ok := l.get("b"); ok {
		t.Fatal("b should be evicted")
	}
	if _, ok := l.get("a"); !ok {
		t.Fatal("a lost")
	}
	if _, ok := l.get("c"); !ok {
		t.Fatal("c lost")
	}
}

func TestLRUOversizedRejected(t *testing.T) {
	l := newLRU(10)
	l.put("big", make([]byte, 100))
	if _, ok := l.get("big"); ok {
		t.Fatal("oversized entry cached")
	}
	if l.used != 0 {
		t.Fatalf("used = %d", l.used)
	}
}

func TestLRUUpdateSameKey(t *testing.T) {
	l := newLRU(300)
	l.put("k", make([]byte, 100))
	l.put("k", make([]byte, 200))
	if l.used != 200 {
		t.Fatalf("used = %d after update", l.used)
	}
	got, ok := l.get("k")
	if !ok || len(got) != 200 {
		t.Fatal("update lost")
	}
}

func TestElasticAllocationGrows(t *testing.T) {
	f := testFabric(true, 0, 1)
	nodes, delay := f.AllocateForJob(40) // 40 units / 4 slots = 10 nodes
	if len(nodes) != 10 {
		t.Fatalf("allocated %d nodes", len(nodes))
	}
	if delay != DefaultCostModel().ProvisionDelay {
		t.Fatalf("delay = %v", delay)
	}
	if f.Size() != 10 {
		t.Fatalf("fabric size = %d", f.Size())
	}
	// already provisioned: no extra delay
	_, delay2 := f.AllocateForJob(40)
	if delay2 != 0 {
		t.Fatalf("second allocation delay = %v", delay2)
	}
}

func TestBoundedAllocationCaps(t *testing.T) {
	f := testFabric(false, 3, 1)
	nodes, _ := f.AllocateForJob(400)
	if len(nodes) != 3 {
		t.Fatalf("bounded fabric allocated %d nodes", len(nodes))
	}
	if f.Size() != 3 {
		t.Fatalf("size = %d", f.Size())
	}
}

func TestAllocateMinimumOneNode(t *testing.T) {
	f := testFabric(true, 0, 0)
	nodes, _ := f.AllocateForJob(0)
	if len(nodes) != 1 {
		t.Fatalf("allocated %d nodes for empty job", len(nodes))
	}
}

func TestKillNode(t *testing.T) {
	f := testFabric(true, 0, 3)
	id := f.Nodes()[1].ID
	if !f.KillNode(id) {
		t.Fatal("kill failed")
	}
	if f.Size() != 2 {
		t.Fatalf("size = %d after kill", f.Size())
	}
	if f.KillNode(id) {
		t.Fatal("double kill succeeded")
	}
	if f.KillNode(999) {
		t.Fatal("killing unknown node succeeded")
	}
	// allocation replaces lost capacity
	nodes, _ := f.AllocateForJob(12)
	if len(nodes) != 3 || f.Size() != 3 {
		t.Fatalf("nodes=%d size=%d", len(nodes), f.Size())
	}
	if f.Provisioned() != 4 {
		t.Fatalf("provisioned = %d", f.Provisioned())
	}
}

func TestFabricString(t *testing.T) {
	f := testFabric(false, 2, 1)
	s := f.String()
	if s == "" || s[:6] != "fabric" {
		t.Fatalf("String = %q", s)
	}
}

func TestSimulatedTimesScaleWithData(t *testing.T) {
	// The elasticity premise of Fig. 7: per-byte read cost is constant, so a
	// 10x larger file takes ~10x longer from remote, while cache hits break
	// that proportionality.
	m := DefaultCostModel()
	small := m.RemoteRead(10 << 20).Seconds()
	big := m.RemoteRead(100 << 20).Seconds()
	ratio := big / small
	if ratio < 8 || ratio > 11 {
		t.Fatalf("remote scaling ratio = %.2f", ratio)
	}
	if m.MemRead(100<<20) > m.RemoteRead(10<<20) {
		t.Fatal("memory read of 100MB should beat remote read of 10MB")
	}
}

func TestProvisionDelayConstant(t *testing.T) {
	f := testFabric(true, 0, 0)
	start := time.Now()
	_, delay := f.AllocateForJob(100)
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("AllocateForJob slept for real; provisioning must be simulated")
	}
	if delay <= 0 {
		t.Fatal("no provisioning delay reported")
	}
}

func TestLeaseSlotsBoundsAndRelease(t *testing.T) {
	f := testFabric(false, 2, 2) // 2 nodes x 4 slots = 8 total
	if f.TotalSlots() != 8 {
		t.Fatalf("total slots = %d", f.TotalSlots())
	}
	l1 := f.LeaseSlots(6)
	if l1.Granted() != 6 {
		t.Fatalf("first lease granted %d, want 6", l1.Granted())
	}
	l2 := f.LeaseSlots(6)
	if l2.Granted() != 2 {
		t.Fatalf("second lease granted %d, want the remaining 2", l2.Granted())
	}
	// An exhausted fabric still grants one slot: queries degrade to serial
	// execution instead of blocking.
	l3 := f.LeaseSlots(4)
	if l3.Granted() != 1 {
		t.Fatalf("exhausted lease granted %d, want 1", l3.Granted())
	}
	l1.Release()
	l1.Release() // idempotent
	l3.Release()
	l2.Release()
	if got := f.LeasedSlots(); got != 0 {
		t.Fatalf("leased after release = %d, want 0", got)
	}
	l4 := f.LeaseSlots(100)
	if l4.Granted() != 8 {
		t.Fatalf("full-fabric lease granted %d, want 8", l4.Granted())
	}
	l4.Release()
}
