module polaris

go 1.22
