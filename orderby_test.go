package polaris

// SQL-surface correctness of parallel ORDER BY: per-morsel sorted runs with
// a k-way merge (and per-worker top-N pushdown under LIMIT) must return
// byte-identical results to the serial executor at every DOP — NULL
// ordering, DESC keys, tie stability and LIMIT/OFFSET boundaries included.
// Run under -race in CI.

import (
	"fmt"
	"testing"
)

// openOrderByTable loads a table whose shape stresses the sort path: small
// files and row groups (many morsels), NULLs in both sort columns, heavy
// ties (g has 5 distinct values), and strings with shared prefixes.
func openOrderByTable(t *testing.T, parallelism int) *DB {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Parallelism = parallelism
	cfg.RowsPerFile = 128
	cfg.RowsPerGroup = 32
	db := Open(cfg)
	db.MustExec(`CREATE TABLE s (id INT, g INT, v INT, name VARCHAR) WITH (DISTRIBUTION = id)`)
	for chunk := 0; chunk < 6; chunk++ {
		stmt := "INSERT INTO s VALUES "
		for i := 0; i < 100; i++ {
			if i > 0 {
				stmt += ", "
			}
			r := chunk*100 + i
			v := fmt.Sprintf("%d", r%37)
			if r%11 == 0 {
				v = "NULL"
			}
			name := fmt.Sprintf("'n-%d'", r%23)
			if r%13 == 0 {
				name = "NULL"
			}
			stmt += fmt.Sprintf("(%d, %d, %s, %s)", r, r%5, v, name)
		}
		db.MustExec(stmt)
	}
	return db
}

// orderByQueries covers the determinism contract's hard cases. Every query
// is fully deterministic: either the key set is unique, or ties are pinned
// by the stable-by-scan-order rule the parallel merge must reproduce.
var orderByQueries = []struct {
	sql  string
	topN bool // expects the top-N pushdown at Parallelism > 1
}{
	{`SELECT id, v FROM s ORDER BY v, id`, false},
	{`SELECT id, v FROM s ORDER BY v DESC, id DESC`, false},
	{`SELECT id, g, v FROM s ORDER BY g, v DESC, id`, false},
	{`SELECT id, name FROM s ORDER BY name, id`, false},
	{`SELECT id, name, v FROM s ORDER BY name DESC, v, id`, false},
	// Ties resolved by scan order: g has 5 distinct values, no id key.
	{`SELECT g, id FROM s ORDER BY g`, false},
	// Expressions in the projection, ordered by alias and by position.
	{`SELECT id, v * 2 AS vv FROM s WHERE v IS NOT NULL ORDER BY vv DESC, id`, false},
	{`SELECT id, g FROM s ORDER BY 2, 1`, false},
	// Top-N pushdown: LIMIT/OFFSET at and around morsel boundaries
	// (files hold 128 rows, row groups 32).
	{`SELECT id, v FROM s ORDER BY v, id LIMIT 10`, true},
	{`SELECT id, v FROM s ORDER BY v DESC, id LIMIT 32`, true},
	{`SELECT id, v FROM s ORDER BY v, id LIMIT 128`, true},
	{`SELECT id, v FROM s ORDER BY v, id LIMIT 31 OFFSET 97`, true},
	{`SELECT id, name FROM s ORDER BY name, id LIMIT 7 OFFSET 3`, true},
	{`SELECT g, id FROM s ORDER BY g LIMIT 40`, true}, // ties across the cutoff
	{`SELECT id FROM s ORDER BY id LIMIT 0`, true},
	{`SELECT id FROM s ORDER BY id LIMIT 5 OFFSET 10000`, true}, // offset past end
	{`SELECT id FROM s ORDER BY id DESC LIMIT 600`, true},       // limit = row count
	{`SELECT id FROM s ORDER BY id LIMIT 10000`, true},          // limit past end
}

func TestParallelOrderByMatchesSerial(t *testing.T) {
	serial := openOrderByTable(t, 1)
	defer serial.Close()

	want := make([]string, len(orderByQueries))
	for i, q := range orderByQueries {
		r, err := serial.Query(q.sql)
		if err != nil {
			t.Fatalf("serial query %d: %v", i, err)
		}
		want[i] = renderRows(r)
	}
	if got := serial.Engine().Work.TopNPushdowns.Load(); got != 0 {
		t.Fatalf("serial plans pushed top-N %d times; Parallelism 1 must stay on the serial Sort", got)
	}

	for _, dop := range []int{4, 8} {
		db := openOrderByTable(t, dop)
		for i, q := range orderByQueries {
			before := db.Engine().Work.TopNPushdowns.Load()
			r, err := db.Query(q.sql)
			if err != nil {
				t.Fatalf("dop=%d query %d: %v", dop, i, err)
			}
			if got := renderRows(r); got != want[i] {
				t.Fatalf("dop=%d query %d differs from serial:\ngot:\n%s\nwant:\n%s\nsql: %s",
					dop, i, got, want[i], q.sql)
			}
			pushed := db.Engine().Work.TopNPushdowns.Load() > before
			if pushed != q.topN {
				t.Fatalf("dop=%d query %d: top-N pushdown = %v, want %v (%s)", dop, i, pushed, q.topN, q.sql)
			}
		}
		db.Close()
	}
}

// TestOrderByLimitRowCounts pins the LIMIT/OFFSET arithmetic at the edges
// (independent of the serial comparison above).
func TestOrderByLimitRowCounts(t *testing.T) {
	db := openOrderByTable(t, 4)
	defer db.Close()
	cases := []struct {
		sql  string
		rows int
	}{
		{`SELECT id FROM s ORDER BY id LIMIT 0`, 0},
		{`SELECT id FROM s ORDER BY id LIMIT 600`, 600},
		{`SELECT id FROM s ORDER BY id LIMIT 601`, 600},
		{`SELECT id FROM s ORDER BY id LIMIT 10 OFFSET 595`, 5},
		{`SELECT id FROM s ORDER BY id LIMIT 10 OFFSET 600`, 0},
		{`SELECT id FROM s ORDER BY id LIMIT 10 OFFSET 10000`, 0},
	}
	for i, c := range cases {
		r := db.MustExec(c.sql)
		if r.Len() != c.rows {
			t.Fatalf("case %d (%s): rows = %d, want %d", i, c.sql, r.Len(), c.rows)
		}
	}
}

// TestParallelOrderByOverJoin exercises the full fan-out shape: probe →
// project → sorted runs → merge, with the join's NULL-padded outer rows
// flowing through the sort (NULLs first ascending).
func TestParallelOrderByOverJoin(t *testing.T) {
	load := func(parallelism int) *DB {
		cfg := DefaultConfig()
		cfg.Parallelism = parallelism
		cfg.RowsPerFile = 64
		db := Open(cfg)
		db.MustExec(`CREATE TABLE f (k INT, x INT) WITH (DISTRIBUTION = k)`)
		db.MustExec(`CREATE TABLE d (k INT, label VARCHAR) WITH (DISTRIBUTION = k)`)
		for chunk := 0; chunk < 2; chunk++ {
			stmt := "INSERT INTO f VALUES "
			for i := 0; i < 100; i++ {
				if i > 0 {
					stmt += ", "
				}
				r := chunk*100 + i
				stmt += fmt.Sprintf("(%d, %d)", r, r%9)
			}
			db.MustExec(stmt)
		}
		stmt := "INSERT INTO d VALUES "
		for i := 0; i < 5; i++ {
			if i > 0 {
				stmt += ", "
			}
			stmt += fmt.Sprintf("(%d, 'lab-%d')", i*2, i)
		}
		db.MustExec(stmt)
		return db
	}
	queries := []string{
		`SELECT f.k, d.label FROM f LEFT JOIN d ON f.x = d.k ORDER BY d.label, f.k LIMIT 25`,
		`SELECT f.k, f.x, d.label FROM f JOIN d ON f.x = d.k ORDER BY f.x DESC, f.k`,
	}
	serial := load(1)
	defer serial.Close()
	want := make([]string, len(queries))
	for i, q := range queries {
		r, err := serial.Query(q)
		if err != nil {
			t.Fatalf("serial join query %d: %v", i, err)
		}
		if r.Len() == 0 {
			t.Fatalf("serial join query %d returned no rows", i)
		}
		want[i] = renderRows(r)
	}
	for _, dop := range []int{4, 8} {
		db := load(dop)
		for i, q := range queries {
			r, err := db.Query(q)
			if err != nil {
				t.Fatalf("dop=%d join query %d: %v", dop, i, err)
			}
			if got := renderRows(r); got != want[i] {
				t.Fatalf("dop=%d join query %d differs from serial:\ngot:\n%s\nwant:\n%s", dop, i, got, want[i])
			}
		}
		db.Close()
	}
}
