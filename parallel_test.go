package polaris

// Correctness of the morsel-driven parallel executor at the SQL surface:
// TPC-H-style queries must return the same results whether the engine runs
// serial (Parallelism 1) or parallel at any degree. Run under -race in CI.

import (
	"fmt"
	"testing"

	"polaris/internal/workload"
)

func openTPCH(t *testing.T, parallelism int) *DB {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Parallelism = parallelism
	db := Open(cfg)
	if _, err := workload.LoadTPCH(db.Engine(), 0.05, 2); err != nil {
		t.Fatalf("load tpch: %v", err)
	}
	return db
}

func renderRows(r *Rows) string {
	out := fmt.Sprintf("%v\n", r.Columns())
	for i := 0; i < r.Len(); i++ {
		out += fmt.Sprintf("%v\n", r.Row(i))
	}
	return out
}

// deterministicQueries return byte-identical results on every execution
// path: projections preserve scan order, global aggregates yield one row,
// and grouped aggregates are fully ordered by their group keys (all integer
// aggregates, so no float summation-order effects).
var deterministicQueries = []string{
	`SELECT l_orderkey, l_partkey, l_quantity FROM lineitem WHERE l_quantity < 25`,
	`SELECT COUNT(*) AS n, SUM(l_quantity) AS q, MIN(l_shipdate) AS mn, MAX(l_shipdate) AS mx FROM lineitem`,
	`SELECT COUNT(*) AS n FROM lineitem WHERE l_shipdate BETWEEN 8500 AND 9500 AND l_quantity < 24`,
	`SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty, COUNT(*) AS n
		FROM lineitem GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus`,
	`SELECT o.o_orderpriority, COUNT(*) AS order_count FROM orders o
		JOIN lineitem l ON o.o_orderkey = l.l_orderkey
		GROUP BY o.o_orderpriority ORDER BY o.o_orderpriority`,
	`SELECT l_suppkey, COUNT(*) AS n FROM lineitem GROUP BY l_suppkey HAVING COUNT(*) > 2 ORDER BY l_suppkey`,
}

func TestParallelQueriesOnEmptyTable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Parallelism = 8
	db := Open(cfg)
	defer db.Close()
	db.MustExec(`CREATE TABLE e (k INT, v VARCHAR) WITH (DISTRIBUTION = k)`)
	r := db.MustExec(`SELECT v FROM e WHERE k = 1`)
	if r.Len() != 0 {
		t.Fatalf("rows = %d", r.Len())
	}
	r = db.MustExec(`SELECT COUNT(*) AS n, SUM(k) AS s FROM e`)
	if r.Len() != 1 || r.Value(0, 0).(int64) != 0 || r.Value(0, 1) != nil {
		t.Fatalf("global agg over empty table = %v", r.Row(0))
	}
	r = db.MustExec(`SELECT k, COUNT(*) AS n FROM e GROUP BY k`)
	if r.Len() != 0 {
		t.Fatalf("grouped agg over empty table rows = %d", r.Len())
	}
}

func TestParallelExecutorMatchesSerialOnTPCH(t *testing.T) {
	serial := openTPCH(t, 1)
	defer serial.Close()

	want := make([]string, len(deterministicQueries))
	for i, q := range deterministicQueries {
		r, err := serial.Query(q)
		if err != nil {
			t.Fatalf("serial query %d: %v", i, err)
		}
		if r.Len() == 0 {
			t.Fatalf("serial query %d returned no rows; dataset too small to exercise anything", i)
		}
		want[i] = renderRows(r)
	}

	for _, dop := range []int{4, 8} {
		db := openTPCH(t, dop)
		for i, q := range deterministicQueries {
			r, err := db.Query(q)
			if err != nil {
				t.Fatalf("dop=%d query %d: %v", dop, i, err)
			}
			if got := renderRows(r); got != want[i] {
				t.Fatalf("dop=%d query %d differs from serial:\ngot:\n%s\nwant:\n%s", dop, i, got, want[i])
			}
		}
		db.Close()
	}
}

// joinHeavyQueries are TPC-H Q3/Q10-shaped queries: multi-way joins feeding
// grouped aggregation. All aggregates are integers and every ORDER BY ends in
// a unique key, so results are byte-identical across DOP — asserting the
// morsel-parallel probe's determinism contract. Run under -race in CI.
var joinHeavyQueries = []string{
	// Q3 shape: join, range predicates on both sides, group on the join key.
	`SELECT o.o_orderkey, COUNT(*) AS n, SUM(l.l_quantity) AS q
		FROM lineitem l JOIN orders o ON l.l_orderkey = o.o_orderkey
		WHERE o.o_orderdate < 9200 AND l.l_shipdate > 8200
		GROUP BY o.o_orderkey ORDER BY o.o_orderkey LIMIT 50`,
	// Q10 shape: two probe stages (lineitem→orders→customer), grouped on the
	// outermost dimension.
	`SELECT c.c_custkey, COUNT(*) AS n, SUM(l.l_quantity) AS q, MAX(l.l_shipdate) AS mx
		FROM lineitem l JOIN orders o ON l.l_orderkey = o.o_orderkey
		JOIN customer c ON o.o_custkey = c.c_custkey
		WHERE l.l_shipdate > 8000
		GROUP BY c.c_custkey ORDER BY c.c_custkey`,
	// Left-outer probe with NULL padding surviving the parallel gather.
	`SELECT o.o_orderkey, l.l_quantity FROM orders o
		LEFT JOIN lineitem l ON o.o_orderkey = l.l_orderkey
		ORDER BY o.o_orderkey, l.l_quantity LIMIT 80`,
}

// TestParallelJoinProbeMatchesSerialOnTPCH pins join-heavy query results to
// the serial executor's bytes at DOP 4 and 8 (the probe runs through
// RunMorsels; the build tables are shared across workers).
func TestParallelJoinProbeMatchesSerialOnTPCH(t *testing.T) {
	serial := openTPCH(t, 1)
	defer serial.Close()

	want := make([]string, len(joinHeavyQueries))
	for i, q := range joinHeavyQueries {
		r, err := serial.Query(q)
		if err != nil {
			t.Fatalf("serial join query %d: %v", i, err)
		}
		if r.Len() == 0 {
			t.Fatalf("serial join query %d returned no rows; dataset too small to exercise the probe", i)
		}
		want[i] = renderRows(r)
	}

	for _, dop := range []int{4, 8} {
		db := openTPCH(t, dop)
		for i, q := range joinHeavyQueries {
			r, err := db.Query(q)
			if err != nil {
				t.Fatalf("dop=%d join query %d: %v", dop, i, err)
			}
			if got := renderRows(r); got != want[i] {
				t.Fatalf("dop=%d join query %d differs from serial:\ngot:\n%s\nwant:\n%s", dop, i, got, want[i])
			}
		}
		db.Close()
	}
}

// TestDistributionAwareMergeFreeAggregation asserts that a GROUP BY covering
// the table's distribution column takes the merge-free plan (cells are
// disjoint by d(r), so per-cell partials need no merge phase), that the plan
// choice is observable via WorkStats.MergeFreeAggs, and that its results
// match the serial executor at every DOP.
func TestDistributionAwareMergeFreeAggregation(t *testing.T) {
	load := func(parallelism int) *DB {
		cfg := DefaultConfig()
		cfg.Parallelism = parallelism
		db := Open(cfg)
		db.MustExec(`CREATE TABLE m (k INT, g INT, v INT) WITH (DISTRIBUTION = k)`)
		for s := 0; s < 3; s++ {
			stmt := "INSERT INTO m VALUES "
			for i := 0; i < 100; i++ {
				if i > 0 {
					stmt += ", "
				}
				r := s*100 + i
				stmt += fmt.Sprintf("(%d, %d, %d)", r%17, r%5, r)
			}
			db.MustExec(stmt)
		}
		return db
	}

	queries := []struct {
		sql       string
		mergeFree bool
	}{
		{`SELECT k, COUNT(*) AS n, SUM(v) AS s, MIN(v) AS mn FROM m GROUP BY k ORDER BY k`, true},
		{`SELECT k, g, COUNT(*) AS n FROM m GROUP BY k, g ORDER BY k, g`, true}, // key set covers k
		{`SELECT g, COUNT(*) AS n, SUM(v) AS s FROM m GROUP BY g ORDER BY g`, false},
		{`SELECT k, SUM(v) AS s FROM m WHERE v % 3 = 0 GROUP BY k HAVING COUNT(*) > 2 ORDER BY k`, true},
	}

	serial := load(1)
	defer serial.Close()
	want := make([]string, len(queries))
	for i, q := range queries {
		want[i] = renderRows(serial.MustExec(q.sql))
	}
	if got := serial.Engine().Work.MergeFreeAggs.Load(); got != 0 {
		t.Fatalf("serial plans took the merge-free path %d times", got)
	}

	for _, dop := range []int{4, 8} {
		db := load(dop)
		for i, q := range queries {
			before := db.Engine().Work.MergeFreeAggs.Load()
			got := renderRows(db.MustExec(q.sql))
			if got != want[i] {
				t.Fatalf("dop=%d query %d differs from serial:\ngot:\n%s\nwant:\n%s", dop, i, got, want[i])
			}
			tookMergeFree := db.Engine().Work.MergeFreeAggs.Load() > before
			if tookMergeFree != q.mergeFree {
				t.Fatalf("dop=%d query %d: merge-free = %v, want %v (%s)", dop, i, tookMergeFree, q.mergeFree, q.sql)
			}
		}
		db.Close()
	}
}

func TestParallelExecutorRunsFullTHQuerySet(t *testing.T) {
	if testing.Short() {
		t.Skip("full 22-query power run; run without -short")
	}
	// The full power run includes ORDER BY ... LIMIT queries whose tie-break
	// order may legitimately differ between the serial executor's first-seen
	// aggregation order and the parallel merge's key order, so this test
	// pins schemas and row counts rather than bytes.
	type shape struct {
		cols string
		rows int
	}
	shapes := map[int][]shape{}
	for _, dop := range []int{1, 4} {
		db := openTPCH(t, dop)
		for i, q := range workload.THQueries() {
			r, err := db.Query(q)
			if err != nil {
				t.Fatalf("dop=%d Q%d: %v", dop, i+1, err)
			}
			shapes[dop] = append(shapes[dop], shape{cols: fmt.Sprintf("%v", r.Columns()), rows: r.Len()})
		}
		db.Close()
	}
	for i := range shapes[1] {
		if shapes[1][i] != shapes[4][i] {
			t.Fatalf("Q%d shape differs: serial %+v vs parallel %+v", i+1, shapes[1][i], shapes[4][i])
		}
	}
}
