// Command doccheck is the markdown half of `make docs`: it scans the given
// markdown files for inline links and verifies that every relative link
// target exists on disk, so README/ROADMAP/docs cross-references cannot rot
// silently. External links (with a URL scheme) and same-file #anchors are
// accepted without network access; a missing file is a hard failure.
//
// Usage:
//
//	doccheck README.md docs/ARCHITECTURE.md ...
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links [text](target). Images (![alt](...))
// match too, which is what we want: a broken diagram is still a broken link.
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)[^)]*\)`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck FILE.md ...")
		os.Exit(2)
	}
	broken := 0
	for _, file := range os.Args[1:] {
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			broken++
			continue
		}
		checked := 0
		for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if !isRelative(target) {
				continue
			}
			checked++
			if path, ok := resolve(file, target); !ok {
				fmt.Fprintf(os.Stderr, "doccheck: %s: broken link %q (no file %s)\n", file, target, path)
				broken++
			}
		}
		fmt.Printf("doccheck: %s: %d relative links checked\n", file, checked)
	}
	if broken > 0 {
		os.Exit(1)
	}
}

// isRelative reports whether target is a checkable on-disk reference:
// no URL scheme, not a pure same-file anchor.
func isRelative(target string) bool {
	if strings.HasPrefix(target, "#") {
		return false
	}
	if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
		return false
	}
	return true
}

// resolve maps a link target to a path relative to the linking file's
// directory (dropping any #fragment) and reports whether it exists.
func resolve(from, target string) (string, bool) {
	if i := strings.IndexByte(target, '#'); i >= 0 {
		target = target[:i]
	}
	path := filepath.Join(filepath.Dir(from), target)
	_, err := os.Stat(path)
	return path, err == nil
}
