// Command doccheck is the markdown half of `make docs`: it scans the given
// markdown files for inline links and verifies that
//
//   - every relative link target exists on disk, so README/ROADMAP/docs
//     cross-references cannot rot silently;
//   - every #fragment — same-file (`#selection-vectors`) or cross-file
//     (`VECTORIZATION.md#kernel-catalog`) — resolves to a real heading in
//     the target markdown file, using GitHub's heading-slug rules, so
//     section anchors cannot rot when headings are reworded;
//   - with -bench-default, benchmark-snapshot references cannot go stale:
//     any `BENCH_PRn.json` mention must exist on disk, and any line that
//     declares a default (contains "default" or "BENCH_JSON") must name the
//     current snapshot. Historical trajectory mentions on other lines are
//     exempt — docs/PERF.md legitimately cites every past snapshot.
//   - with -lint-catalog, the analyzer catalog in docs/LINT.md cannot drift
//     from the polarisvet registry: every analyzer in lint.Registry() must
//     appear as a backticked table-row name in the catalog, and every
//     catalogued name must still be registered.
//
// External links (with a URL scheme) are accepted without network access; a
// broken reference of any kind is a hard failure.
//
// Usage:
//
//	doccheck [-bench-default BENCH_PR6.json] [-lint-catalog docs/LINT.md] FILE.md ...
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"polaris/internal/lint"
)

// linkRe matches inline markdown links [text](target). Images (![alt](...))
// match too, which is what we want: a broken diagram is still a broken link.
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)[^)]*\)`)

// benchRe matches benchmark snapshot file references in prose or code spans.
var benchRe = regexp.MustCompile(`BENCH_PR\d+\.json`)

// headingRe matches ATX headings; setext headings are not used in this repo.
var headingRe = regexp.MustCompile(`^#{1,6}\s+(.*)$`)

// catalogRowRe matches a markdown table row whose first cell is a backticked
// analyzer name — the shape of the docs/LINT.md analyzer catalog.
var catalogRowRe = regexp.MustCompile("^\\|\\s*`([a-z][a-z0-9-]*)`\\s*\\|")

func main() {
	benchDefault := flag.String("bench-default", "",
		"current BENCH_PRn.json snapshot; flags dangling or stale snapshot references")
	lintCatalog := flag.String("lint-catalog", "",
		"markdown file whose analyzer catalog table must match the polarisvet registry")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: doccheck [-bench-default BENCH_PRn.json] FILE.md ...")
		os.Exit(2)
	}
	broken := 0
	anchors := map[string]map[string]bool{} // md path -> heading slug set
	for _, file := range flag.Args() {
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			broken++
			continue
		}
		text := string(data)
		checked, frags := 0, 0
		for _, m := range linkRe.FindAllStringSubmatch(text, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			path, frag := splitFragment(file, target)
			if path != file {
				checked++
				if _, err := os.Stat(path); err != nil {
					fmt.Fprintf(os.Stderr, "doccheck: %s: broken link %q (no file %s)\n", file, target, path)
					broken++
					continue
				}
			}
			if frag != "" && strings.HasSuffix(path, ".md") {
				frags++
				slugs, err := headingSlugs(anchors, path)
				if err != nil {
					fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", file, err)
					broken++
				} else if !slugs[frag] {
					fmt.Fprintf(os.Stderr, "doccheck: %s: broken anchor %q (no heading #%s in %s)\n",
						file, target, frag, path)
					broken++
				}
			}
		}
		if *benchDefault != "" {
			broken += checkBenchRefs(file, text, *benchDefault)
		}
		fmt.Printf("doccheck: %s: %d relative links, %d anchors checked\n", file, checked, frags)
	}
	if *lintCatalog != "" {
		broken += checkLintCatalog(*lintCatalog)
	}
	if broken > 0 {
		os.Exit(1)
	}
}

// checkLintCatalog compares the backticked first-column names in the catalog
// table of the given markdown file against lint.Registry(), both directions:
// a registered analyzer missing from the docs, or a documented analyzer that
// is no longer registered, is a failure.
func checkLintCatalog(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		return 1
	}
	// Only the table under the "Analyzer catalog" heading is the registry
	// mirror; other tables (the annotation-key table, say) may also have
	// backticked first cells.
	documented := map[string]bool{}
	inCatalog := false
	for _, line := range strings.Split(string(data), "\n") {
		if m := headingRe.FindStringSubmatch(line); m != nil {
			inCatalog = strings.EqualFold(strings.TrimSpace(m[1]), "analyzer catalog")
			continue
		}
		if !inCatalog {
			continue
		}
		if m := catalogRowRe.FindStringSubmatch(line); m != nil {
			documented[m[1]] = true
		}
	}
	if len(documented) == 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %s: no analyzer catalog table found\n", path)
		return 1
	}
	bad := 0
	registered := map[string]bool{}
	for _, a := range lint.Registry() {
		registered[a.Name] = true
		if !documented[a.Name] {
			fmt.Fprintf(os.Stderr, "doccheck: %s: analyzer %q is in the polarisvet registry but missing from the catalog table\n",
				path, a.Name)
			bad++
		}
	}
	names := make([]string, 0, len(documented))
	for name := range documented {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !registered[name] {
			fmt.Fprintf(os.Stderr, "doccheck: %s: catalog lists %q, which is not in the polarisvet registry\n",
				path, name)
			bad++
		}
	}
	fmt.Printf("doccheck: %s: %d catalog entries checked against %d registered analyzers\n",
		path, len(documented), len(registered))
	return bad
}

// splitFragment resolves a link target against the linking file's directory
// and separates the #fragment. A pure "#frag" target points at file itself.
func splitFragment(from, target string) (path, frag string) {
	if i := strings.IndexByte(target, '#'); i >= 0 {
		target, frag = target[:i], target[i+1:]
	}
	if target == "" {
		return from, frag
	}
	return filepath.Join(filepath.Dir(from), target), frag
}

// headingSlugs returns (caching in cache) the set of GitHub-style anchor
// slugs for the headings of the markdown file at path.
func headingSlugs(cache map[string]map[string]bool, path string) (map[string]bool, error) {
	if s, ok := cache[path]; ok {
		return s, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	slugs := map[string]bool{}
	counts := map[string]int{}
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		m := headingRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		slug := slugify(m[1])
		// GitHub de-duplicates repeated headings as slug, slug-1, slug-2...
		if n := counts[slug]; n > 0 {
			slugs[fmt.Sprintf("%s-%d", slug, n)] = true
		} else {
			slugs[slug] = true
		}
		counts[slug]++
	}
	cache[path] = slugs
	return slugs, nil
}

// slugify applies GitHub's heading-anchor algorithm: strip markdown
// formatting, lowercase, drop everything but letters/digits/spaces/hyphens/
// underscores, then turn spaces into hyphens.
func slugify(h string) string {
	h = strings.ReplaceAll(h, "`", "")
	h = linkRe.ReplaceAllStringFunc(h, func(l string) string {
		return l[1:strings.IndexByte(l, ']')] // keep link text, drop target
	})
	h = strings.ToLower(strings.TrimSpace(h))
	var b strings.Builder
	for _, r := range h {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-' || r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// checkBenchRefs flags benchmark-snapshot drift in one file: references to
// snapshots that don't exist on disk, and default-declaring lines that name
// a snapshot other than the current one.
func checkBenchRefs(file, text, current string) int {
	bad := 0
	for i, line := range strings.Split(text, "\n") {
		refs := benchRe.FindAllString(line, -1)
		if len(refs) == 0 {
			continue
		}
		declaresDefault := strings.Contains(strings.ToLower(line), "default") ||
			strings.Contains(line, "BENCH_JSON")
		for _, ref := range refs {
			if _, err := os.Stat(ref); err != nil {
				fmt.Fprintf(os.Stderr, "doccheck: %s:%d: reference to %s, which does not exist on disk\n",
					file, i+1, ref)
				bad++
				continue
			}
			if declaresDefault && ref != current {
				fmt.Fprintf(os.Stderr, "doccheck: %s:%d: stale default %s (current snapshot is %s)\n",
					file, i+1, ref, current)
				bad++
			}
		}
	}
	return bad
}
