package main

import (
	"os"
	"path/filepath"
	"testing"
)

// chdirTemp runs the test from a fresh temp dir so checkBenchRefs's
// os.Stat probes see exactly the snapshot files the test creates.
func chdirTemp(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = os.Chdir(old) })
	return dir
}

func touch(t *testing.T, dir, name string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestBenchRefsMissingSnapshotFails(t *testing.T) {
	dir := chdirTemp(t)
	touch(t, dir, "BENCH_PR6.json")
	// BENCH_PR7.json is referenced but absent from disk: the doc gate must
	// fail instead of letting the reference dangle.
	text := "Current numbers live in BENCH_PR7.json.\n"
	if bad := checkBenchRefs("README.md", text, "BENCH_PR7.json"); bad != 1 {
		t.Fatalf("missing snapshot: %d findings, want 1", bad)
	}
	touch(t, dir, "BENCH_PR7.json")
	if bad := checkBenchRefs("README.md", text, "BENCH_PR7.json"); bad != 0 {
		t.Fatalf("present snapshot: %d findings, want 0", bad)
	}
}

func TestBenchRefsStaleDefaultFails(t *testing.T) {
	dir := chdirTemp(t)
	touch(t, dir, "BENCH_PR6.json")
	touch(t, dir, "BENCH_PR7.json")
	// A default-declaring line naming last PR's snapshot is stale even though
	// the file still exists.
	stale := "The default snapshot is BENCH_PR6.json.\n"
	if bad := checkBenchRefs("README.md", stale, "BENCH_PR7.json"); bad != 1 {
		t.Fatalf("stale default: %d findings, want 1", bad)
	}
	// The same mention on a non-default line is a legitimate historical
	// reference (docs/PERF.md cites every past snapshot).
	history := "PR 6 recorded its numbers in BENCH_PR6.json.\n"
	if bad := checkBenchRefs("docs/PERF.md", history, "BENCH_PR7.json"); bad != 0 {
		t.Fatalf("historical mention: %d findings, want 0", bad)
	}
	// BENCH_JSON assignment lines count as default declarations too.
	makefile := "BENCH_JSON ?= BENCH_PR6.json\n"
	if bad := checkBenchRefs("Makefile", makefile, "BENCH_PR7.json"); bad != 1 {
		t.Fatalf("stale BENCH_JSON default: %d findings, want 1", bad)
	}
}
