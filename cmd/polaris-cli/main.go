// Command polaris-cli is an interactive SQL shell over a fresh in-process
// Polaris database. It supports the full T-SQL subset of the engine —
// DDL, DML, queries, BEGIN/COMMIT/ROLLBACK, AS OF time travel, CLONE,
// RESTORE, SHOW, COMPACT, CHECKPOINT and VACUUM — plus a few \-commands.
//
// Usage:
//
//	polaris-cli                     # interactive shell
//	polaris-cli -e 'SELECT 1'       # run statements and exit
//	polaris-cli -demo               # preload the TPC-H demo dataset (SF 0.1)
//	polaris-cli -join-budget 4096   # grace-spill join builds over 4 KiB
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"polaris"
	"polaris/internal/workload"
)

func main() {
	exec := flag.String("e", "", "execute the given semicolon-separated statements and exit")
	demo := flag.Bool("demo", false, "preload TPC-H tables at scale factor 0.1")
	joinBudget := flag.Int64("join-budget", 0, "hash-join build-side memory budget in bytes; builds over it grace-spill to the object store (0 = unlimited)")
	distributed := flag.Bool("distributed", false, "execute parallel SELECTs as DCP task DAGs with object-store exchange (see docs/DCP-QUERIES.md)")
	flag.Parse()

	cfg := polaris.DefaultConfig()
	cfg.JoinMemoryBudget = *joinBudget
	cfg.DistributedQueries = *distributed
	db := polaris.Open(cfg)
	defer db.Close()

	if *demo {
		fmt.Fprint(os.Stderr, "loading TPC-H SF 0.1 ... ")
		n, err := workload.LoadTPCH(db.Engine(), 0.1, 4)
		if err != nil {
			fmt.Fprintf(os.Stderr, "load failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "done (%d lineitem rows)\n", n)
	}

	sess := db.Session()
	defer sess.Close()

	if *exec != "" {
		for _, stmt := range splitStatements(*exec) {
			if !runOne(sess, stmt) {
				os.Exit(1)
			}
		}
		return
	}

	fmt.Println("polaris-cli — type SQL ending with ';', or \\help")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if sess.InTransaction() {
			fmt.Print("polaris*> ")
		} else {
			fmt.Print("polaris> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if !metaCommand(sess, trimmed) {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if strings.HasSuffix(trimmed, ";") {
			stmtText := buf.String()
			buf.Reset()
			for _, stmt := range splitStatements(stmtText) {
				runOne(sess, stmt)
			}
		}
		prompt()
	}
}

func splitStatements(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ";") {
		if strings.TrimSpace(part) != "" {
			out = append(out, part)
		}
	}
	return out
}

func metaCommand(sess *polaris.Session, cmd string) bool {
	switch strings.Fields(cmd)[0] {
	case "\\q", "\\quit", "\\exit":
		return false
	case "\\help":
		fmt.Println(`statements: SELECT / INSERT / UPDATE / DELETE / CREATE TABLE / DROP TABLE
            BEGIN / COMMIT / ROLLBACK
            EXPLAIN SELECT ...                (cost-based plan, no execution)
            SELECT ... FROM t AS OF <seq>     (time travel)
            CLONE TABLE src TO dst [AS OF n]  (zero-copy clone)
            RESTORE TABLE t AS OF n
            SHOW TABLES | SHOW STATS t
            COMPACT TABLE t | CHECKPOINT TABLE t | VACUUM
meta:       \q quit, \help this text`)
	default:
		fmt.Printf("unknown command %s (try \\help)\n", cmd)
	}
	return true
}

func runOne(sess *polaris.Session, stmt string) bool {
	rows, err := sess.Exec(stmt)
	if err != nil {
		fmt.Printf("error: %v\n", err)
		return false
	}
	switch {
	case rows.Len() > 0 || len(rows.Columns()) > 0:
		printRows(rows)
		fmt.Printf("(%d rows, sim %v)\n", rows.Len(), rows.SimTime())
	case rows.Message() != "":
		fmt.Println(rows.Message())
	default:
		fmt.Printf("OK, %d rows affected (sim %v)\n", rows.RowsAffected(), rows.SimTime())
	}
	return true
}

func printRows(rows *polaris.Rows) {
	cols := rows.Columns()
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}
	const maxPrint = 50
	n := rows.Len()
	if n > maxPrint {
		n = maxPrint
	}
	cells := make([][]string, n)
	for r := 0; r < n; r++ {
		row := rows.Row(r)
		cells[r] = make([]string, len(cols))
		for c := range cols {
			cells[r][c] = fmt.Sprintf("%v", row[c])
			if len(cells[r][c]) > widths[c] {
				widths[c] = len(cells[r][c])
			}
		}
	}
	line := func(parts []string) {
		for i, p := range parts {
			fmt.Printf("| %-*s ", widths[i], p)
		}
		fmt.Println("|")
	}
	line(cols)
	var sep []string
	for _, w := range widths {
		sep = append(sep, strings.Repeat("-", w))
	}
	line(sep)
	for _, row := range cells {
		line(row)
	}
	if rows.Len() > maxPrint {
		fmt.Printf("... %d more rows\n", rows.Len()-maxPrint)
	}
}
