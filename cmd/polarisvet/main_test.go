package main

import (
	"bytes"
	"strings"
	"testing"

	"polaris/internal/lint"
)

// TestCleanPackageExitsZero pins the success path: a package with no
// contract violations produces no output and exit status 0.
func TestCleanPackageExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"../../internal/lint/testdata/src/clean"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d on clean package\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("unexpected findings on clean package:\n%s", stdout.String())
	}
}

// TestInjectedRegressionFails pins the acceptance case end to end: an
// unsorted map iteration in a package whose import path ends in
// internal/exec must make the full driver — scope filtering included —
// exit non-zero with a detmaporder finding.
func TestInjectedRegressionFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"../../internal/lint/testdata/src/injected/internal/exec"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d on injected regression, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "[detmaporder]") || !strings.Contains(out, "map iteration order") {
		t.Fatalf("missing detmaporder finding in output:\n%s", out)
	}
}

// TestListMatchesRegistry keeps -list in lockstep with the registry.
func TestListMatchesRegistry(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d from -list\nstderr:\n%s", code, stderr.String())
	}
	for _, a := range lint.Registry() {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output missing analyzer %s:\n%s", a.Name, stdout.String())
		}
	}
}

// TestAnalyzerSubset pins -analyzers: only the selected analyzer runs, and
// an unknown name is a usage error.
func TestAnalyzerSubset(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-analyzers", "selaware", "../../internal/lint/testdata/src/injected/internal/exec"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d running only selaware over a detmaporder violation\nstdout:\n%s", code, stdout.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-analyzers", "bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d for unknown analyzer, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Fatalf("missing unknown-analyzer message:\n%s", stderr.String())
	}
}
