// Command polarisvet is the repo's custom multichecker: a suite of
// go/analysis-style passes (internal/lint) that mechanize the normative
// prose contracts — cross-DOP byte-identity determinism, the
// selection-vector aliasing rules, the spill-namespace cleanup invariant,
// and the fan-out cancellation contract — plus bundled implementations of
// four upstream-style vet passes. See docs/LINT.md for the analyzer
// catalog and annotation grammar.
//
// Usage:
//
//	polarisvet [-analyzers name,name] [-list] [packages]
//
// With no packages, ./... is checked. Exit status is 1 when findings are
// reported, 2 on usage or load errors. `make lint` runs
// `go run ./cmd/polarisvet ./...` on every push.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"polaris/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("polarisvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "print the analyzer registry and exit")
	only := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all; disables the stale-annotation check)")
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	registry := lint.Registry()
	if *list {
		for _, a := range registry {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	selected := registry
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range registry {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "polarisvet: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			selected = append(selected, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "polarisvet: %v\n", err)
		return 2
	}

	var diags []lint.Diagnostic
	for _, pkg := range pkgs {
		var applicable []*lint.Analyzer
		ran := map[string]bool{}
		for _, a := range selected {
			if a.AppliesTo == nil || a.AppliesTo(pkg.PkgPath) {
				applicable = append(applicable, a)
				ran[a.Name] = true
			}
		}
		diags = append(diags, lint.RunAnalyzers(pkg, applicable)...)
		if *only == "" {
			// Stale-annotation detection needs every consumer of a key to
			// have run, so it is skipped for subset runs.
			diags = append(diags, lint.StaleAnnotations(pkg, ran)...)
		}
	}
	lint.SortDiagnostics(diags)
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "polarisvet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
