// Command polaris-server is the long-running multi-session HTTP front end
// over a Polaris engine: many concurrent sessions multiplexed over one
// compute fabric with front-door admission control, per-session memory
// budgets, health/metrics endpoints and graceful drain on SIGTERM.
//
// Usage:
//
//	polaris-server                      # serve on 127.0.0.1:7432
//	polaris-server -addr :8080 -demo    # preload TPC-H SF 0.1
//	polaris-server -session-budget 4096 # per-session join memory budget
//	polaris-server -smoke               # self-test: start, health-check,
//	                                    # run a query, drain, exit
//
// The HTTP API (POST /v1/query, POST/DELETE /v1/session, GET /healthz,
// GET /metrics), the admission model and the drain semantics are documented
// in docs/SERVER.md.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"polaris"
	"polaris/internal/server"
	"polaris/internal/workload"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:7432", "listen address")
		demo          = flag.Bool("demo", false, "preload TPC-H tables at scale factor 0.1")
		parallelism   = flag.Int("parallelism", 0, "intra-query parallelism target (0 = GOMAXPROCS)")
		joinBudget    = flag.Int64("join-budget", 0, "engine-wide hash-join build memory budget in bytes (0 = unlimited)")
		sessionBudget = flag.Int64("session-budget", 0, "per-session join memory budget in bytes (0 = inherit engine, <0 = unlimited)")
		queueDepth    = flag.Int("queue-depth", 64, "admission queue depth; arrivals beyond it get 429 (<0 = unbounded)")
		admitTimeout  = flag.Duration("admit-timeout", 10*time.Second, "max time a statement may wait in the admission queue before 504")
		slotsPerQry   = flag.Int("slots-per-query", 0, "fabric slots requested per admitted statement (0 = engine parallelism)")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight statements on shutdown")
		smoke         = flag.Bool("smoke", false, "start on an ephemeral port, health-check, run one query, drain, exit")
		distributed   = flag.Bool("distributed", false, "execute parallel SELECTs as DCP task DAGs with object-store exchange (see docs/DCP-QUERIES.md)")
	)
	flag.Parse()

	cfg := polaris.DefaultConfig()
	if *parallelism > 0 {
		cfg.Parallelism = *parallelism
	}
	cfg.JoinMemoryBudget = *joinBudget
	cfg.DistributedQueries = *distributed
	db := polaris.Open(cfg)
	defer db.Close()

	if *demo {
		fmt.Fprint(os.Stderr, "loading TPC-H SF 0.1 ... ")
		n, err := workload.LoadTPCH(db.Engine(), 0.1, 4)
		if err != nil {
			log.Fatalf("load failed: %v", err)
		}
		fmt.Fprintf(os.Stderr, "done (%d lineitem rows)\n", n)
	}

	srv := server.New(db.Engine(), server.Config{
		QueueDepth:    *queueDepth,
		AdmitTimeout:  *admitTimeout,
		SlotsPerQuery: *slotsPerQry,
		SessionBudget: *sessionBudget,
	})

	listenAddr := *addr
	if *smoke {
		listenAddr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		log.Fatalf("listen %s: %v", listenAddr, err)
	}
	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	log.Printf("polaris-server listening on http://%s", ln.Addr())

	if *smoke {
		if err := runSmoke(ln.Addr().String(), srv, db); err != nil {
			log.Fatalf("server smoke FAILED: %v", err)
		}
		_ = hs.Shutdown(context.Background())
		fmt.Println("server smoke OK")
		return
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-stop:
		log.Printf("received %s: draining (in-flight statements finish, new requests get 503)", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			log.Printf("drain: %v", err)
		}
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		log.Printf("drained: %d leased slots, %d sessions", db.Engine().Fabric.LeasedSlots(), srv.SessionCount())
	case err := <-serveErr:
		log.Fatalf("serve: %v", err)
	}
}

// runSmoke exercises the serve → query → drain lifecycle end to end against
// the live listener: the `make server-smoke` CI gate.
func runSmoke(addr string, srv *server.Server, db *polaris.DB) error {
	base := "http://" + addr
	get := func(path string) (int, []byte, error) {
		resp, err := http.Get(base + path)
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b, nil
	}
	post := func(path string, body any) (int, []byte, error) {
		data, _ := json.Marshal(body)
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(data))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b, nil
	}

	if code, body, err := get("/healthz"); err != nil || code != http.StatusOK {
		return fmt.Errorf("healthz: code=%d err=%v body=%s", code, err, body)
	}
	stmts := []string{
		"CREATE TABLE smoke (k INT, v INT) WITH (DISTRIBUTION = k)",
		"INSERT INTO smoke VALUES (1, 10), (2, 20), (3, 30)",
	}
	for _, q := range stmts {
		if code, body, err := post("/v1/query", map[string]string{"sql": q}); err != nil || code != http.StatusOK {
			return fmt.Errorf("query %q: code=%d err=%v body=%s", q, code, err, body)
		}
	}
	code, body, err := post("/v1/query", map[string]string{"sql": "SELECT SUM(v) FROM smoke"})
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("select: code=%d err=%v body=%s", code, err, body)
	}
	var qr server.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		return fmt.Errorf("select response: %v (%s)", err, body)
	}
	if len(qr.Rows) != 1 || len(qr.Rows[0]) != 1 || qr.Rows[0][0] != float64(60) {
		return fmt.Errorf("SELECT SUM(v) = %v, want [[60]]", qr.Rows)
	}
	if code, _, err := get("/metrics"); err != nil || code != http.StatusOK {
		return fmt.Errorf("metrics: code=%d err=%v", code, err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		return fmt.Errorf("drain: %v", err)
	}
	if code, _, _ := get("/healthz"); code != http.StatusServiceUnavailable {
		return fmt.Errorf("healthz after drain: code=%d, want 503", code)
	}
	if code, _, _ := post("/v1/query", map[string]string{"sql": "SELECT 1"}); code != http.StatusServiceUnavailable {
		return fmt.Errorf("query after drain: code=%d, want 503", code)
	}
	if n := db.Engine().Fabric.LeasedSlots(); n != 0 {
		return fmt.Errorf("leaked %d fabric slots after drain", n)
	}
	if n := srv.SessionCount(); n != 0 {
		return fmt.Errorf("%d sessions survived drain", n)
	}
	return nil
}
