// Command benchrunner regenerates every table and figure of the paper's
// evaluation (Section 7) plus the DESIGN.md ablations, printing the same
// rows/series the paper reports. Times are simulated (cost-model) durations;
// compare shapes against the paper, not absolute values.
//
// Usage:
//
//	benchrunner                      # all figures
//	benchrunner -fig 9               # one figure
//	benchrunner -scale 1.0           # bigger workloads, sharper curves
//	benchrunner -ablations           # the ablation suite
//	benchrunner -json BENCH_PR3.json # wall-clock micro-bench suite → JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"

	"polaris/internal/bench"
	"polaris/internal/colfile"
)

func main() {
	fig := flag.Int("fig", 0, "figure number to run (7-12); 0 = all")
	scale := flag.Float64("scale", 0.5, "workload scale multiplier")
	ablations := flag.Bool("ablations", false, "run the ablation suite instead of figures")
	jsonPath := flag.String("json", "", "run the wall-clock micro-benchmarks and write results to this JSON file")
	flag.Parse()

	s := bench.Scale(*scale)
	if *jsonPath != "" {
		if err := runMicroJSON(*jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *ablations {
		runAblations()
		return
	}
	figs := []int{7, 8, 9, 10, 11, 12}
	if *fig != 0 {
		figs = []int{*fig}
	}
	for _, f := range figs {
		switch f {
		case 7:
			fig7(s)
		case 8:
			fig8(s)
		case 9:
			fig9(s)
		case 10:
			fig10(s)
		case 11:
			fig11(s)
		case 12:
			fig12(s)
		default:
			fmt.Fprintf(os.Stderr, "unknown figure %d (have 7-12)\n", f)
			os.Exit(2)
		}
	}
}

// microResult is one row of the machine-readable benchmark output: the
// wall-clock and allocation profile of a micro-benchmark at one
// configuration. The file these land in (BENCH_PR2.json and successors) is
// the per-PR perf trajectory: later PRs diff their numbers against it.
type microResult struct {
	Name        string  `json:"name"`
	DOP         int     `json:"dop,omitempty"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// microReport is the top-level JSON document.
type microReport struct {
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Results    []microResult `json:"results"`
}

// runMicroJSON measures the parallel scan, join, full-sort and top-N
// micro-benchmarks at DOP 1/4/8 plus the fmt-vs-typed key-encoding baseline,
// and writes the results as JSON. The key-encoding pair is the measured
// evidence for the PR2 typed-key claim: "fmt" is the legacy per-row boxed
// encoding kept only as a baseline, "typed" is what the executor now runs;
// the sort/top-N pair (PR3) measures what the LIMIT pushdown saves over a
// full parallel sort.
func runMicroJSON(path string) error {
	files, _, err := bench.MicroFiles()
	if err != nil {
		return err
	}
	table, err := bench.ParallelJoinTable()
	if err != nil {
		return err
	}
	var report microReport
	report.GoVersion = runtime.Version()
	report.GOMAXPROCS = runtime.GOMAXPROCS(0)

	record := func(name string, dop int, r testing.BenchmarkResult) {
		report.Results = append(report.Results, microResult{
			Name: name, DOP: dop, Iterations: r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp(),
		})
		fmt.Printf("%-24s dop=%d  %12.0f ns/op  %9d allocs/op\n",
			name, dop, float64(r.T.Nanoseconds())/float64(r.N), r.AllocsPerOp())
	}

	for _, dop := range []int{1, 4, 8} {
		dop := dop
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := bench.ParallelScanAggregate(files, dop); err != nil {
					b.Fatal(err)
				}
			}
		})
		record("ParallelScan", dop, r)
	}
	for _, dop := range []int{1, 4, 8} {
		dop := dop
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := bench.ParallelJoinProbe(files, table, dop); err != nil {
					b.Fatal(err)
				}
			}
		})
		record("ParallelJoin", dop, r)
	}
	for _, dop := range []int{1, 4, 8} {
		dop := dop
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := bench.ParallelJoinSpill(files, dop); err != nil {
					b.Fatal(err)
				}
			}
		})
		record("ParallelJoinSpill", dop, r)
	}
	bloomTable, err := bench.ParallelJoinBloomTable()
	if err != nil {
		return err
	}
	for _, dop := range []int{1, 4, 8} {
		dop := dop
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, pruned, err := bench.ParallelJoinBloom(files, bloomTable, dop, true)
				if err != nil {
					b.Fatal(err)
				}
				if out.NumRows() == 0 || pruned == 0 {
					b.Fatalf("bloom probe: %d rows, %d pruned", out.NumRows(), pruned)
				}
			}
		})
		record("ParallelJoinBloom", dop, r)
	}
	for _, dop := range []int{1, 4, 8} {
		dop := dop
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := bench.ParallelSort(files, dop); err != nil {
					b.Fatal(err)
				}
			}
		})
		record("ParallelSort", dop, r)
	}
	for _, dop := range []int{1, 4, 8} {
		dop := dop
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := bench.ParallelTopN(files, dop); err != nil {
					b.Fatal(err)
				}
			}
		})
		record("ParallelTopN", dop, r)
	}

	// Distributed DAG execution vs the in-process morsel path for the same
	// SQL join+aggregate: the pair quantifies the object-store exchange tax
	// (dop=1 stays on the serial path by the planner gate, so only 4/8 are
	// measured distributed).
	for _, dop := range []int{1, 4, 8} {
		for _, distributed := range []bool{false, true} {
			name := "ParallelDAGQuery/morsel"
			if distributed {
				if dop == 1 {
					continue
				}
				name = "ParallelDAGQuery/dag"
			}
			h, err := bench.PrepareDAGQuery(distributed, dop)
			if err != nil {
				return err
			}
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := h.Run(); err != nil {
						b.Fatal(err)
					}
				}
			})
			record(name, dop, r)
		}
	}

	batch := bench.KeyEncodeBatch(1 << 14)
	keyEncoders := []struct {
		name string
		fn   func(*colfile.Batch, []int) int
	}{
		{"KeyEncoding/fmt", bench.FmtKeyEncode},
		{"KeyEncoding/typed", bench.TypedKeyEncode},
	}
	for _, e := range keyEncoders {
		e := e
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if e.fn(batch, []int{0, 1}) == 0 {
					b.Fatal("empty encoding")
				}
			}
		})
		record(e.name, 0, r)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func header(title, paperShape string) {
	fmt.Printf("\n=== %s ===\n", title)
	fmt.Printf("paper shape: %s\n\n", paperShape)
}

func fig7(s bench.Scale) {
	header("Figure 7: load time for TPC-H lineitem at various scale factors",
		"load time grows sub-linearly with data size; resource factor grows super-linearly (labels 1, 3, 26, 240, 2896)")
	rows := bench.Fig7(s)
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Label, strconv.FormatInt(r.Rows, 10), strconv.Itoa(r.SourceFiles),
			bench.Secs(r.LoadTime), strconv.Itoa(r.ResourceFactor),
		})
	}
	fmt.Print(bench.RenderTable(
		[]string{"scale", "rows", "source_files", "load_sims", "resource_factor"}, out))
}

func fig8(s bench.Scale) {
	header("Figure 8: lineitem load, bounded (fixed) vs unbounded (elastic) resources",
		"1TB: bounded == elastic (240 vs 240); 10TB: bounded far slower (2896 vs 304)")
	rows := bench.Fig8(s)
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Label, bench.Secs(r.BoundedTime), bench.Secs(r.ElasticTime),
			strconv.Itoa(r.BoundedRes), strconv.Itoa(r.ElasticRes),
			fmt.Sprintf("%.2fx", float64(r.BoundedTime)/float64(r.ElasticTime)),
		})
	}
	fmt.Print(bench.RenderTable(
		[]string{"scale", "bounded_sims", "elastic_sims", "bounded_nodes", "elastic_nodes", "elastic_gain"}, out))
}

func fig9(s bench.Scale) {
	header("Figure 9: TPC-H query times, isolated vs concurrent load into the same tables",
		"per-query times barely change under concurrent load (WLM + SI + warm immutable caches)")
	rows := bench.Fig9(s)
	var out [][]string
	var iso, conc float64
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("Q%d", r.Query), bench.Ms(r.Isolated), bench.Ms(r.Concurrent),
			fmt.Sprintf("%.2fx", float64(r.Concurrent)/float64(r.Isolated)),
		})
		iso += r.Isolated.Seconds()
		conc += r.Concurrent.Seconds()
	}
	out = append(out, []string{"TOTAL", fmt.Sprintf("%.2f", iso*1000),
		fmt.Sprintf("%.2f", conc*1000), fmt.Sprintf("%.2fx", conc/iso)})
	fmt.Print(bench.RenderTable(
		[]string{"query", "isolated_ms", "concurrent_ms", "ratio"}, out))
}

func fig10(s bench.Scale) {
	header("Figure 10: data compaction correcting storage health during WP1",
		"DM phases flip tables to unhealthy (red); autonomous compaction restores green before the next SU phase")
	res := bench.Fig10(s)
	// render the timeline as one row per phase with green/red cells per table
	byPhase := map[string]map[string]bool{}
	var phases []string
	tables := map[string]bool{}
	for _, sm := range res.Timeline {
		if _, ok := byPhase[sm.Phase]; !ok {
			byPhase[sm.Phase] = map[string]bool{}
			phases = append(phases, sm.Phase)
		}
		byPhase[sm.Phase][sm.Table] = sm.Healthy
		tables[sm.Table] = true
	}
	var names []string
	for _, sm := range res.Timeline {
		if tables[sm.Table] {
			names = append(names, sm.Table)
			tables[sm.Table] = false
		}
	}
	var out [][]string
	for _, p := range phases {
		row := []string{p}
		for _, tbl := range names {
			if byPhase[p][tbl] {
				row = append(row, "green")
			} else {
				row = append(row, "RED")
			}
		}
		out = append(out, row)
	}
	fmt.Print(bench.RenderTable(append([]string{"phase"}, names...), out))
	fmt.Printf("\ncompactions run: %d\n", res.Compactions)
}

func fig11(s bench.Scale) {
	header("Figure 11: manifest checkpoint lifetimes per table within WP1",
		"each DM phase creates 10 manifests per table (2 INSERT + 6 DELETE + 2 compactions), minting one checkpoint per table per phase")
	rows := bench.Fig11(s)
	var out [][]string
	for _, r := range rows {
		end := "open"
		if r.EndSeq > 0 {
			end = strconv.FormatInt(r.EndSeq, 10)
		}
		out = append(out, []string{
			r.Table, strconv.FormatInt(r.StartSeq, 10), end, strconv.Itoa(r.Folded),
		})
	}
	fmt.Print(bench.RenderTable(
		[]string{"table", "checkpoint_seq", "superseded_at_seq", "manifests_folded"}, out))
}

func fig12(s bench.Scale) {
	header("Figure 12: LST-Bench WP3 concurrency phases",
		"SU phases with concurrent DM or Optimize take significantly longer than isolated SU phases")
	rows := bench.Fig12(s)
	var out [][]string
	for _, r := range rows {
		conc := "-"
		if r.Concurrent != "" {
			conc = r.Concurrent
		}
		out = append(out, []string{
			r.Phase, conc, bench.Secs(r.SUTime),
			strconv.FormatInt(r.WorkRows, 10),
			strconv.FormatInt(r.RemoteBytes, 10),
			strconv.FormatInt(r.Commits, 10),
		})
	}
	fmt.Print(bench.RenderTable(
		[]string{"phase", "concurrent", "su_sims", "scan_rows", "remote_bytes", "commits"}, out))
}

func runAblations() {
	header("Ablation: conflict granularity (paper 4.4.1)",
		"file granularity admits concurrent disjoint-file updaters that table granularity aborts")
	rows := bench.AblationConflictGranularity(6)
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Config, r.Metric, fmt.Sprintf("%.0f", r.Value)})
	}
	fmt.Print(bench.RenderTable([]string{"config", "metric", "value"}, out))

	header("Ablation: checkpoint threshold (paper 5.2)",
		"cold snapshot reconstruction gets cheaper as checkpoints get more frequent")
	rows = bench.AblationCheckpointThreshold(29, []int{0, 10, 5})
	out = nil
	for _, r := range rows {
		out = append(out, []string{r.Config, bench.Ms(r.SimTime)})
	}
	fmt.Print(bench.RenderTable([]string{"config", "cold_snapshot_ms"}, out))

	header("Ablation: compaction (paper 5.1)",
		"compaction removes deleted rows physically, cutting read amplification")
	rows = bench.AblationCompaction()
	out = nil
	for _, r := range rows {
		out = append(out, []string{r.Config, fmt.Sprintf("%.0f", r.Value), bench.Ms(r.SimTime)})
	}
	fmt.Print(bench.RenderTable([]string{"config", "rows_scanned", "scan_ms"}, out))

	header("Ablation: copy-on-write vs merge-on-read deletes (paper 2.1)",
		"MoR trickle deletes write tiny DVs (low write amplification); CoW scans fewer rows afterwards")
	rows = bench.AblationCoWvsMoR()
	out = nil
	for _, r := range rows {
		out = append(out, []string{r.Config, r.Metric, fmt.Sprintf("%.0f", r.Value)})
	}
	fmt.Print(bench.RenderTable([]string{"config", "metric", "value"}, out))

	header("Ablation: workload management separation (paper 4.3)",
		"separated pools keep read completion independent of queued writes")
	rows = bench.AblationWLM()
	out = nil
	for _, r := range rows {
		out = append(out, []string{r.Config, bench.Ms(r.SimTime)})
	}
	fmt.Print(bench.RenderTable([]string{"config", "read_completion_ms"}, out))
}
