package main

import (
	"testing"
)

// TestRenderStableAcrossRuns pins docs/PERF.md generation as a regression
// surface: rendering the same snapshot set repeatedly — including a fresh
// load each time, so map allocation and iteration seed differ — must
// produce byte-identical markdown. render folds results through maps
// (benchmark name → DOP set); any ordering leak there would make `perfdoc
// -check` flap in CI. This is a determinism regression test over fixed
// inputs, not a fuzz target.
func TestRenderStableAcrossRuns(t *testing.T) {
	dir := t.TempDir()
	// Two snapshots with overlapping and disjoint benchmarks/DOPs, so the
	// union maps in render have something to misorder.
	writeSnap(t, dir, "BENCH_PR3.json", `{"go_version":"go1.22","results":[
		{"name":"ParallelScan","dop":1,"ns_per_op":900,"allocs_per_op":12,"bytes_per_op":300},
		{"name":"ParallelScan","dop":4,"ns_per_op":400,"allocs_per_op":12,"bytes_per_op":300},
		{"name":"ParallelJoin","dop":1,"ns_per_op":2100,"allocs_per_op":40,"bytes_per_op":900}]}`)
	writeSnap(t, dir, "BENCH_PR4.json", `{"go_version":"go1.22","results":[
		{"name":"ParallelScan","dop":8,"ns_per_op":250,"allocs_per_op":12,"bytes_per_op":300},
		{"name":"ParallelSort","dop":1,"ns_per_op":5000,"allocs_per_op":80,"bytes_per_op":2000},
		{"name":"ParallelJoin","dop":4,"ns_per_op":800,"allocs_per_op":40,"bytes_per_op":900}]}`)

	snaps, err := loadSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := render(snaps)
	for i := 0; i < 10; i++ {
		again, err := loadSnapshots(dir)
		if err != nil {
			t.Fatal(err)
		}
		if got := render(again); got != want {
			t.Fatalf("render drifted on reload %d\nfirst:\n%s\nnow:\n%s", i, want, got)
		}
	}
}

// TestRenderStableOnCommittedSnapshots applies the same byte-equality pin to
// the repo's real committed BENCH_PR*.json set (the exact inputs `perfdoc
// -check` compares against docs/PERF.md in `make docs`).
func TestRenderStableOnCommittedSnapshots(t *testing.T) {
	snaps, err := loadSnapshots("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Skip("no committed BENCH_PR*.json snapshots found")
	}
	want := render(snaps)
	for i := 0; i < 5; i++ {
		again, err := loadSnapshots("../..")
		if err != nil {
			t.Fatal(err)
		}
		if got := render(again); got != want {
			t.Fatalf("render of committed snapshots drifted on reload %d", i)
		}
	}
}
