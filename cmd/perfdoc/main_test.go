package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSnap(t *testing.T, dir, name, body string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

const snapBody = `{"go_version":"go1.22","results":[
	{"name":"ParallelJoinBloom","dop":1,"ns_per_op":1000,"allocs_per_op":10,"bytes_per_op":100}]}`

func TestLoadSnapshotsAutoDiscovers(t *testing.T) {
	dir := t.TempDir()
	// Snapshots are discovered by pattern and ordered by PR number — adding
	// BENCH_PR10.json later must not sort before BENCH_PR7.json.
	writeSnap(t, dir, "BENCH_PR10.json", snapBody)
	writeSnap(t, dir, "BENCH_PR7.json", snapBody)
	writeSnap(t, dir, "BENCH_PR2.json", snapBody)
	writeSnap(t, dir, "not-a-snapshot.json", snapBody)
	snaps, err := loadSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, s := range snaps {
		names = append(names, s.name)
	}
	want := []string{"BENCH_PR2.json", "BENCH_PR7.json", "BENCH_PR10.json"}
	if len(names) != len(want) {
		t.Fatalf("discovered %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("discovered %v, want %v (numeric PR order)", names, want)
		}
	}
}

func TestRenderPicksUpNewSnapshotWithoutEdits(t *testing.T) {
	dir := t.TempDir()
	writeSnap(t, dir, "BENCH_PR6.json", `{"go_version":"go1.22","results":[
		{"name":"ParallelJoin","dop":1,"ns_per_op":2000,"allocs_per_op":20,"bytes_per_op":200}]}`)
	snaps, err := loadSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	before := render(snaps)
	if strings.Contains(before, "ParallelJoinBloom") {
		t.Fatal("benchmark not yet in any snapshot must not render")
	}

	// Dropping the next PR's snapshot in is all it takes: the new benchmark
	// gets its own table and the new row appears, with the earlier snapshot
	// shown as a dash for the benchmark it predates.
	writeSnap(t, dir, "BENCH_PR7.json", snapBody)
	snaps, err = loadSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	after := render(snaps)
	if !strings.Contains(after, "## ParallelJoinBloom") {
		t.Fatal("new snapshot's benchmark did not get a table")
	}
	if !strings.Contains(after, "| BENCH_PR7 |") {
		t.Fatal("new snapshot row missing")
	}
	if !strings.Contains(after, "| BENCH_PR6 | — | — |") {
		t.Fatal("pre-existing snapshot must dash out the benchmark it predates")
	}
}
